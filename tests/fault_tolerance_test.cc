// Graceful degradation of the tiered constraint manager when the remote
// site fails: retries, circuit breaking, deferred verdicts with optimistic
// apply, automatic re-verification, and rollback compensation for
// late-detected violations. The acceptance property of ISSUE 1: under a
// 100% hard outage the manager never crashes or blocks — every update
// resolves at tiers 0-2 or returns kDeferred — and all deferred checks are
// correctly re-verified once the outage ends.

#include <gtest/gtest.h>

#include <cstdlib>

#include "datalog/parser.h"
#include "distsim/fault_injector.h"
#include "manager/constraint_manager.h"
#include "manager/script.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

/// CI's seed sweep (.github/workflows/ci.yml) reruns the suite with
/// CCPI_FAULT_SEED exported; only tests asserting seed-independent
/// *identities* (accounting reconciliations, never "this seed produces N
/// faults") read it, so the sweep widens coverage without flaking the
/// schedule-sensitive tests.
uint64_t FaultSeedOr(uint64_t fallback) {
  const char* env = std::getenv("CCPI_FAULT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

Outcome OutcomeOf(const std::vector<CheckReport>& reports,
                  const std::string& name) {
  for (const CheckReport& r : reports) {
    if (r.constraint == name) return r.outcome;
  }
  ADD_FAILURE() << "no report for " << name;
  return Outcome::kUnknown;
}

/// A manager with one cross-site constraint (local l, remote r) and an
/// attached injector owned by the fixture.
struct Rig {
  explicit Rig(ResilienceConfig resilience = {}, FaultConfig faults = {})
      : injector(faults), mgr({"l", "emp"}, CostModel{}, resilience) {
    EXPECT_TRUE(mgr.AddConstraint(
                       "fi",
                       MustParse(
                           "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                    .ok());
    EXPECT_TRUE(mgr.AddConstraint(
                       "cap", MustParse("panic :- emp(E,D,S) & S > 200"))
                    .ok());
    mgr.site().set_fault_injector(&injector);
  }
  FaultInjector injector;
  ConstraintManager mgr;
};

TEST(FaultToleranceTest, HardOutageNeverBlocksEveryUpdateResolves) {
  Rig rig;
  rig.injector.ForceOutage(true);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());

  // A mix of updates: tier-1/2-resolvable ones and ones needing T3.
  std::vector<Update> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(Update::Insert(
        "emp", {V(i), V("d"), V(50 + i)}));     // independence resolves
    stream.push_back(Update::Insert(
        "l", {V(10 * i), V(10 * i + 5)}));      // needs the remote r
    stream.push_back(Update::Insert(
        "audit", {V(i)}));                      // unaffected
  }
  size_t deferred = 0;
  for (const Update& u : stream) {
    auto reports = rig.mgr.ApplyUpdate(u);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    for (const CheckReport& r : *reports) {
      // The only verdicts possible during a hard outage: proved holding
      // at T0-T2, or deferred. Never kViolated-by-guess, never kUnknown.
      EXPECT_TRUE(r.outcome == Outcome::kHolds ||
                  r.outcome == Outcome::kDeferred)
          << OutcomeToString(r.outcome) << " for " << r.constraint;
      if (r.outcome == Outcome::kDeferred) ++deferred;
    }
  }
  EXPECT_GT(deferred, 0u);
  EXPECT_EQ(rig.mgr.stats().deferred, deferred);
  EXPECT_EQ(rig.mgr.deferred_queue().size(), deferred);
  // Optimistic apply: the updates are in place pending re-check.
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(0), V(5)}));
  // The breaker tripped and saved most episodes the full retry cost.
  EXPECT_GT(rig.mgr.stats().breaker_fast_fails, 0u);
  EXPECT_EQ(rig.mgr.breaker().state(), CircuitState::kOpen);
}

TEST(FaultToleranceTest, DeferredChecksRecoverWhenOutageEnds) {
  Rig rig;
  rig.injector.ForceOutage(true);
  // Remote r only forbids values >= 1000; the deferred inserts are fine.
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(5)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(6), V(9)})).ok());
  ASSERT_GE(rig.mgr.deferred_queue().size(), 2u);

  rig.injector.ForceOutage(false);
  // Rechecks are gated by the breaker cooldown; ApplyUpdate ticks it.
  auto resolved = rig.mgr.RecheckDeferred();
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  for (int i = 0; i < 20 && !rig.mgr.deferred_queue().empty(); ++i) {
    auto nop = rig.mgr.ApplyUpdate(Update::Insert("audit", {V(i)}));
    ASSERT_TRUE(nop.ok());
  }
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
  EXPECT_EQ(rig.mgr.stats().deferred_recovered, 2u);
  EXPECT_EQ(rig.mgr.stats().deferred_violations, 0u);
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(1), V(5)}));
}

TEST(FaultToleranceTest, LateViolationDetectedAndRolledBack) {
  Rig rig;
  // Remote r holds 7; inserting l(5,10) forbids it — a genuine violation
  // that T3 would have caught, hidden by the outage.
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(7)}).ok());
  rig.injector.ForceOutage(true);
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(5), V(10)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kDeferred);
  // Optimistically applied despite the lurking violation.
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(5), V(10)}));

  rig.injector.ForceOutage(false);
  // Drive updates until the breaker half-opens and the recheck runs.
  for (int i = 0; i < 20 && !rig.mgr.deferred_queue().empty(); ++i) {
    ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("audit", {V(i)})).ok());
  }
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
  EXPECT_EQ(rig.mgr.stats().deferred_violations, 1u);
  // Compensation: the optimistic apply was rolled back.
  EXPECT_FALSE(rig.mgr.site().db().Contains("l", {V(5), V(10)}));
}

TEST(FaultToleranceTest, DeletingAnUnverifiedTupleDropsItsRecheck) {
  Rig rig;
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  rig.injector.ForceOutage(true);
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(5)})).ok());
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 1u);
  // The deletion resolves at tier 1 (monotone constraint) and removes the
  // unverified tuple; the queued re-check is moot and must not outlive
  // the effect it was supposed to verify.
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Delete("l", {V(1), V(5)})).ok());
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
  EXPECT_FALSE(rig.mgr.site().db().Contains("l", {V(1), V(5)}));
}

TEST(FaultToleranceTest, RejectPolicyRefusesUnverifiableUpdates) {
  ResilienceConfig resilience;
  resilience.on_unreachable = DeferredPolicy::kReject;
  Rig rig(resilience);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  rig.injector.ForceOutage(true);
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(5), V(10)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kDeferred);
  // Refused: the database is unchanged and nothing is queued.
  EXPECT_FALSE(rig.mgr.site().db().Contains("l", {V(5), V(10)}));
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
}

TEST(FaultToleranceTest, BreakerOpensAndFailsFastWithoutRemoteTrips) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 1;  // isolate breaker behaviour
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.cooldown_ticks = 1000;  // stays open for the test
  Rig rig(resilience);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  rig.injector.ForceOutage(true);

  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(2)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(4), V(5)})).ok());
  EXPECT_EQ(rig.mgr.breaker().state(), CircuitState::kOpen);

  uint64_t trips_when_opened = rig.injector.stats().trips;
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(7), V(8)})).ok());
  // Open circuit: the check deferred without touching the network.
  EXPECT_EQ(rig.injector.stats().trips, trips_when_opened);
  EXPECT_GT(rig.mgr.stats().breaker_fast_fails, 0u);
}

TEST(FaultToleranceTest, TransientFaultsAreAbsorbedByRetries) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 10;
  FaultConfig faults;
  faults.seed = 7;
  faults.transient_rate = 0.5;
  Rig rig(resilience, faults);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  // 20 cross-site checks; with 10 attempts each, a 50% transient rate is
  // absorbed with overwhelming probability (deterministic given the seed).
  // The matching delete resolves at tier 1 (deleting from a monotone
  // constraint is independence-safe), so each check pays exactly one
  // remote trip per attempt.
  for (int i = 0; i < 20; ++i) {
    Update ins = Update::Insert("l", {V(10 * i), V(10 * i + 3)});
    auto reports = rig.mgr.ApplyUpdate(ins);
    ASSERT_TRUE(reports.ok());
    EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kHolds);
    ASSERT_TRUE(
        rig.mgr.ApplyUpdate(Update::Delete(ins.pred, ins.tuple)).ok());
  }
  EXPECT_GT(rig.mgr.stats().remote_retries, 0u);
  EXPECT_EQ(rig.mgr.stats().deferred, 0u);
  EXPECT_GT(rig.mgr.stats().access.remote_failures, 0u);
}

TEST(FaultToleranceTest, PerReportRetryCountsSurface) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 16;
  FaultConfig faults;
  faults.seed = 3;
  faults.transient_rate = 0.6;
  Rig rig(resilience, faults);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  size_t total_retries = 0;
  for (int i = 0; i < 10; ++i) {
    Update ins = Update::Insert("l", {V(10 * i), V(10 * i + 3)});
    auto reports = rig.mgr.ApplyUpdate(ins);
    ASSERT_TRUE(reports.ok());
    for (const CheckReport& r : *reports) total_retries += r.retries;
    ASSERT_TRUE(
        rig.mgr.ApplyUpdate(Update::Delete(ins.pred, ins.tuple)).ok());
  }
  EXPECT_GT(total_retries, 0u);
  EXPECT_EQ(rig.mgr.stats().remote_retries, total_retries);
}

// Accounting audit: every tier-3 attempt lands in the atomic counters AND
// in exactly one per-episode record — CheckReport::retries for ApplyUpdate
// episodes (including ones that exhausted the policy and deferred),
// DeferredResolution::retries for recheck episodes. The two views must
// reconcile exactly; a retry counted twice or dropped is a bug.
TEST(FaultToleranceTest, RetryCountersMatchPerEpisodeRecordsExactly) {
  ResilienceConfig resilience;
  // Generous, budget-unlimited retries: with a modest transient rate no
  // post-outage episode ever exhausts them, so the recheck drain is
  // guaranteed to complete and every retry lands in a surfaced record.
  resilience.retry.max_attempts = 30;
  resilience.retry.episode_budget = 0;
  resilience.breaker.failure_threshold = 1000;  // no fast-fails: every
                                                // episode really attempts
  resilience.auto_recheck = false;  // drain explicitly so every
                                    // DeferredResolution is captured
  // Pinned seed, NOT the CCPI_FAULT_SEED sweep: the identity only holds
  // when no recheck episode exhausts its retries mid-drain (an episode
  // that gives up and requeues surfaces no record for its retries), which
  // this schedule guarantees and an arbitrary one does not.
  FaultConfig faults;
  faults.seed = 11;
  faults.transient_rate = 0.25;
  Rig rig(resilience, faults);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());

  size_t report_retries = 0;
  size_t t3_reports = 0;
  size_t deferred_seen = 0;

  // Phase 1: hard outage — each cross-site check burns its full retry
  // budget and defers. Those retries must surface in its CheckReport.
  rig.injector.ForceOutage(true);
  for (int i = 0; i < 4; ++i) {
    auto reports =
        rig.mgr.ApplyUpdate(Update::Insert("l", {V(10 * i), V(10 * i + 3)}));
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    for (const CheckReport& r : *reports) {
      report_retries += r.retries;
      if (r.tier == Tier::kFullCheck) ++t3_reports;
      if (r.outcome == Outcome::kDeferred) ++deferred_seen;
    }
  }
  ASSERT_GT(deferred_seen, 0u);

  // Phase 2: outage over, transient faults remain — more retried
  // ApplyUpdate episodes, then an explicit drain whose retries must
  // surface in the DeferredResolutions.
  rig.injector.ForceOutage(false);
  for (int i = 0; i < 6; ++i) {
    auto reports = rig.mgr.ApplyUpdate(
        Update::Insert("l", {V(1000 + 10 * i), V(1000 + 10 * i + 3)}));
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    for (const CheckReport& r : *reports) {
      report_retries += r.retries;
      if (r.tier == Tier::kFullCheck) ++t3_reports;
    }
  }
  auto resolved = rig.mgr.RecheckDeferred();
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  ASSERT_TRUE(rig.mgr.deferred_queue().empty());  // the drain completed
  size_t resolution_retries = 0;
  for (const DeferredResolution& res : *resolved) {
    resolution_retries += res.retries;
  }

  ManagerStats stats = rig.mgr.stats();
  // Non-vacuous: both record kinds carried retries in this schedule.
  EXPECT_GT(report_retries, 0u);
  EXPECT_GT(resolution_retries, 0u);
  // The audit identities. Retries: counter == sum over both record kinds.
  EXPECT_EQ(stats.remote_retries, report_retries + resolution_retries);
  // Attempts: one per tier-3 episode (ApplyUpdate fan-out entries that
  // reached T3, plus recheck resolutions) plus the retries.
  EXPECT_EQ(stats.remote_attempts,
            t3_reports + resolved->size() + stats.remote_retries);
}

// Physical-trip audit with the remote-read cache in play: the injector
// decides every logical remote read exactly once, so its trip counter
// must equal billed physical trips plus revalidated cache hits — a read
// double-billed (or served without consuming its draw) breaks this.
TEST(FaultToleranceTest, InjectorTripsReconcileWithAccessCounters) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 8;
  resilience.breaker.failure_threshold = 1000;
  FaultConfig faults;
  faults.seed = FaultSeedOr(5);
  faults.transient_rate = 0.3;
  Rig rig(resilience, faults);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  ASSERT_TRUE(rig.mgr.site().remote_cache_enabled());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(
        rig.mgr.ApplyUpdate(Update::Insert("l", {V(10 * i), V(10 * i + 3)}))
            .ok());
  }
  AccessStats access = rig.mgr.stats().access;
  FaultStats injected = rig.injector.stats();
  EXPECT_GT(access.cache_hits, 0u);  // the cache actually engaged
  EXPECT_EQ(injected.trips, access.remote_trips + access.cache_hits);
  // Every injected fault was billed as exactly one failed read.
  EXPECT_EQ(injected.injected(),
            static_cast<uint64_t>(access.remote_failures));
}

TEST(FaultToleranceTest, TransactionAbortDropsQueuedRechecks) {
  ResilienceConfig resilience;
  resilience.breaker.failure_threshold = 1000;  // keep probing; no fast-fail
  Rig rig(resilience);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  // cap violates on the third update; the first needs the (dead) remote.
  rig.injector.ForceOutage(true);
  std::vector<Update> txn = {
      Update::Insert("l", {V(1), V(5)}),
      Update::Insert("emp", {V("a"), V("d"), V(100)}),
      Update::Insert("emp", {V("b"), V("d"), V(900)}),  // violates cap
  };
  auto result = rig.mgr.ApplyTransaction(txn);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->committed);
  // Everything rolled back, including the optimistic apply, and the
  // deferred queue holds no stale entries for the dead transaction.
  EXPECT_FALSE(rig.mgr.site().db().Contains("l", {V(1), V(5)}));
  EXPECT_FALSE(rig.mgr.site().db().Contains("emp", {V("a"), V("d"), V(100)}));
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
}

TEST(FaultToleranceTest, RejectPolicyAbortsTransactionOnOutage) {
  ResilienceConfig resilience;
  resilience.on_unreachable = DeferredPolicy::kReject;
  Rig rig(resilience);
  ASSERT_TRUE(rig.mgr.site().db().Insert("r", {V(1000)}).ok());
  rig.injector.ForceOutage(true);
  std::vector<Update> txn = {
      Update::Insert("emp", {V("a"), V("d"), V(100)}),
      Update::Insert("l", {V(1), V(5)}),  // unverifiable -> refused
  };
  auto result = rig.mgr.ApplyTransaction(txn);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_FALSE(rig.mgr.site().db().Contains("emp", {V("a"), V("d"), V(100)}));
}

/// A Rig variant that also takes the budget configuration (queue cap,
/// overflow policy, execution budgets).
struct BudgetRig {
  explicit BudgetRig(BudgetConfig budget, ResilienceConfig resilience = {})
      : injector(FaultConfig{}),
        mgr({"l", "l2"}, CostModel{}, resilience, ParallelConfig{},
            RemoteCacheConfig{}, budget) {
    EXPECT_TRUE(mgr.AddConstraint(
                       "fi",
                       MustParse(
                           "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                    .ok());
    mgr.site().set_fault_injector(&injector);
    EXPECT_TRUE(mgr.site().db().Insert("r", {V(1000)}).ok());
  }
  FaultInjector injector;
  ConstraintManager mgr;
};

TEST(FaultToleranceTest, OverflowRejectUpdateRefusesAtQueueCap) {
  BudgetConfig budget;
  budget.deferred_queue_cap = 2;
  budget.overflow = OverflowPolicy::kRejectUpdate;
  ResilienceConfig resilience;
  resilience.breaker.failure_threshold = 1000;  // isolate the queue cap
  BudgetRig rig(budget, resilience);
  rig.injector.ForceOutage(true);

  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(2)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(4), V(5)})).ok());
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 2u);

  // The third deferral would exceed the cap: the whole update is refused,
  // its optimistic apply rolled back, and the report says why.
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(7), V(8)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kDeferred);
  bool flagged = false;
  for (const CheckReport& r : *reports) flagged = flagged || r.queue_overflow;
  EXPECT_TRUE(flagged);
  EXPECT_FALSE(rig.mgr.site().db().Contains("l", {V(7), V(8)}));
  EXPECT_EQ(rig.mgr.deferred_queue().size(), 2u);
  EXPECT_GE(rig.mgr.stats().budget_exhausted, 1u);
  EXPECT_EQ(rig.mgr.stats().deferred_dropped, 0u);
  // The first two optimistic applies stand untouched.
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(1), V(2)}));
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(4), V(5)}));
}

TEST(FaultToleranceTest, OverflowShedOldestDropsFromTheFront) {
  BudgetConfig budget;
  budget.deferred_queue_cap = 2;
  budget.overflow = OverflowPolicy::kShedOldest;
  ResilienceConfig resilience;
  resilience.breaker.failure_threshold = 1000;
  BudgetRig rig(budget, resilience);
  rig.injector.ForceOutage(true);

  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(2)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(4), V(5)})).ok());
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(7), V(8)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "fi"), Outcome::kDeferred);

  // The newest update was admitted; the *oldest* queue entry was dropped,
  // its optimistic apply left standing, permanently unverified.
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(7), V(8)}));
  EXPECT_TRUE(rig.mgr.site().db().Contains("l", {V(1), V(2)}));
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 2u);
  EXPECT_EQ(rig.mgr.deferred_queue()[0].update.tuple,
            (std::vector<Value>{V(4), V(5)}));
  EXPECT_EQ(rig.mgr.deferred_queue()[1].update.tuple,
            (std::vector<Value>{V(7), V(8)}));
  EXPECT_EQ(rig.mgr.stats().deferred_dropped, 1u);
}

TEST(FaultToleranceTest, OverflowBlockRecheckDrainsToMakeRoom) {
  BudgetConfig budget;
  budget.deferred_queue_cap = 2;
  budget.overflow = OverflowPolicy::kBlockRecheck;
  // A per-check tuple cap that only bites on the recursive constraint:
  // "deep" derives 55 path tuples, "fi" at most one panic tuple.
  budget.per_check.max_derived_tuples = 5;
  ResilienceConfig resilience;
  resilience.breaker.failure_threshold = 1000;
  resilience.auto_recheck = false;  // the only drain is the overflow's own
  BudgetRig rig(budget, resilience);
  ASSERT_TRUE(rig.mgr.AddConstraint(
                     "deep",
                     MustParse("panic :- l2(X) & path(X,Y) & bad(Y)\n"
                               "path(X,Y) :- edge2(X,Y)\n"
                               "path(X,Y) :- edge2(X,Z) & path(Z,Y)"))
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.mgr.site().db().Insert("edge2", {V(i), V(i + 1)}).ok());
  }

  rig.injector.ForceOutage(true);
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(2)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(4), V(5)})).ok());
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 2u);

  // Site still down: the blocking drain frees nothing, so the policy falls
  // back to refusing like kRejectUpdate.
  auto refused = rig.mgr.ApplyUpdate(Update::Insert("l2", {V(99)}));
  ASSERT_TRUE(refused.ok());
  EXPECT_FALSE(rig.mgr.site().db().Contains("l2", {V(99)}));
  EXPECT_EQ(rig.mgr.deferred_queue().size(), 2u);

  // Site back up: the shed "deep" check still defers (its tuple cap is
  // spent mid-recursion), but now the blocking drain resolves both queued
  // "fi" entries and the fresh entry fits.
  rig.injector.ForceOutage(false);
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l2", {V(5)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "deep"), Outcome::kDeferred);
  for (const CheckReport& r : *reports) {
    if (r.constraint == "deep") {
      EXPECT_EQ(r.reason, StatusCode::kResourceExhausted);
      EXPECT_FALSE(r.queue_overflow);
    }
  }
  EXPECT_TRUE(rig.mgr.site().db().Contains("l2", {V(5)}));
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 1u);
  EXPECT_EQ(rig.mgr.deferred_queue()[0].constraint, "deep");
  EXPECT_EQ(rig.mgr.stats().deferred_recovered, 2u);
  EXPECT_GE(rig.mgr.stats().shed_checks, 1u);
}

// Regression for deferred-drain head-of-line blocking: one dead remote
// predicate must not pin re-checks that only need other, reachable
// predicates behind it in the queue.
TEST(FaultToleranceTest, DeadPredDoesNotBlockOtherRechecksBehindIt) {
  ResilienceConfig resilience;
  resilience.breaker.failure_threshold = 1000;
  resilience.auto_recheck = false;  // drain explicitly, assert precisely
  FaultInjector injector{FaultConfig{}};
  ConstraintManager mgr({"l"}, CostModel{}, resilience);
  mgr.site().set_fault_injector(&injector);
  ASSERT_TRUE(mgr.AddConstraint(
                     "a", MustParse("panic :- l(X,Y) & r1(Z) & X <= Z & Z <= Y"))
                  .ok());
  ASSERT_TRUE(mgr.AddConstraint(
                     "b", MustParse("panic :- l(X,Y) & r2(Z) & X <= Z & Z <= Y"))
                  .ok());
  ASSERT_TRUE(mgr.site().db().Insert("r1", {V(1000)}).ok());
  ASSERT_TRUE(mgr.site().db().Insert("r2", {V(1000)}).ok());

  injector.ForceOutage(true);
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Insert("l", {V(1), V(5)})).ok());
  ASSERT_EQ(mgr.deferred_queue().size(), 2u);  // "a" queued ahead of "b"
  ASSERT_EQ(mgr.deferred_queue()[0].constraint, "a");

  // Outage over — except r1, constraint "a"'s remote relation. "a" sits at
  // the head of the queue; the drain must skip past it, resolve "b", and
  // terminate (bounded passes, no spin on the dead entry).
  injector.ForceOutage(false);
  injector.ForcePredOutage("r1", true);
  auto resolved = mgr.RecheckDeferred();
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  ASSERT_EQ(resolved->size(), 1u);
  EXPECT_EQ((*resolved)[0].check.constraint, "b");
  EXPECT_EQ((*resolved)[0].outcome, Outcome::kHolds);
  ASSERT_EQ(mgr.deferred_queue().size(), 1u);
  EXPECT_EQ(mgr.deferred_queue()[0].constraint, "a");

  // r1 recovers: the skipped entry resolves on the next drain.
  injector.ForcePredOutage("r1", false);
  resolved = mgr.RecheckDeferred();
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 1u);
  EXPECT_EQ((*resolved)[0].check.constraint, "a");
  EXPECT_TRUE(mgr.deferred_queue().empty());
  EXPECT_EQ(mgr.stats().deferred_recovered, 2u);
}

TEST(FaultToleranceTest, ScriptRunReportsDeferredAndRecovers) {
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "fact r(7)\n"
      "insert l(20, 30)\n"   // fine: 7 not in [20,30]
      "insert l(5, 10)\n");  // violation hidden by the outage window
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.enable_faults = true;
  // Outage covering the whole stream's remote trips; the shutdown drain
  // runs after it ends (trip indices past the window succeed).
  options.faults.outages.push_back(OutageWindow{0, 3});
  options.resilience.retry.max_attempts = 1;
  options.resilience.breaker.cooldown_ticks = 0;
  options.print_stats = true;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->updates_deferred, 0u);
  // The shutdown drain re-verified everything: the hidden violation was
  // caught late and compensated.
  EXPECT_EQ(report->deferred_pending, 0u);
  EXPECT_EQ(report->deferred_violations, 1u);
  EXPECT_GE(report->deferred_recovered, 1u);
  EXPECT_NE(report->text.find("deferred:fi"), std::string::npos);
  EXPECT_NE(report->text.find("rolled back"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Outage-window edge cases. Windows are half-open intervals over the trip
// counter in *draw space*: [begin, end) with begin inclusive, end
// exclusive, and a trip inside several windows fails once, not once per
// window. These pins matter because per-site schedules index windows
// independently — an off-by-one here silently shifts every multi-site
// outage experiment.

TEST(OutageWindowTest, ZeroLengthWindowNeverFires) {
  FaultConfig config;
  config.outages.push_back(OutageWindow{3, 3});
  FaultInjector injector(config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(injector.NextTrip(), FaultKind::kNone) << "trip " << i;
  }
  EXPECT_EQ(injector.stats().outage_faults, 0u);
  EXPECT_EQ(injector.stats().trips, 8u);
}

TEST(OutageWindowTest, BoundariesAreHalfOpen) {
  FaultConfig config;
  config.outages.push_back(OutageWindow{2, 4});
  FaultInjector injector(config);
  EXPECT_EQ(injector.NextTrip(), FaultKind::kNone);    // trip 0
  EXPECT_EQ(injector.NextTrip(), FaultKind::kNone);    // trip 1
  EXPECT_EQ(injector.NextTrip(), FaultKind::kOutage);  // trip 2: begin is in
  EXPECT_EQ(injector.NextTrip(), FaultKind::kOutage);  // trip 3
  EXPECT_EQ(injector.NextTrip(), FaultKind::kNone);    // trip 4: end is out
  EXPECT_EQ(injector.stats().outage_faults, 2u);
}

TEST(OutageWindowTest, AdjacentWindowsAreContiguous) {
  FaultConfig config;
  config.outages.push_back(OutageWindow{0, 3});
  config.outages.push_back(OutageWindow{3, 6});
  FaultInjector injector(config);
  // [0,3) and [3,6) tile [0,6) exactly: no seam at trip 3, no spill past 5.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(injector.NextTrip(), FaultKind::kOutage) << "trip " << i;
  }
  EXPECT_EQ(injector.NextTrip(), FaultKind::kNone);  // trip 6
  EXPECT_EQ(injector.stats().outage_faults, 6u);
}

TEST(OutageWindowTest, OverlappingWindowsCountEachTripOnce) {
  FaultConfig config;
  config.outages.push_back(OutageWindow{1, 5});
  config.outages.push_back(OutageWindow{3, 8});
  FaultInjector injector(config);
  for (int i = 0; i < 10; ++i) injector.NextTrip();
  // Trips 1..7 fall in the union; the doubly-covered trips 3 and 4 fail
  // once each, so the fault count is the union size, not the sum of sizes.
  EXPECT_EQ(injector.stats().outage_faults, 7u);
  EXPECT_EQ(injector.stats().trips, 10u);
}

TEST(OutageWindowTest, WindowsConsumeDrawsLikeHealthyTrips) {
  // The schedule draws exactly one variate per trip whether or not a
  // window swallows the trip, so the post-window schedule is identical to
  // an injector that never had the window. Compare trip-by-trip.
  FaultConfig with_window;
  with_window.seed = 42;
  with_window.transient_rate = 0.5;
  with_window.outages.push_back(OutageWindow{2, 5});
  FaultConfig without_window;
  without_window.seed = 42;
  without_window.transient_rate = 0.5;
  FaultInjector a(with_window);
  FaultInjector b(without_window);
  for (int i = 0; i < 20; ++i) {
    FaultKind ka = a.NextTrip();
    FaultKind kb = b.NextTrip();
    if (i >= 2 && i < 5) {
      EXPECT_EQ(ka, FaultKind::kOutage) << "trip " << i;
    } else {
      EXPECT_EQ(ka, kb) << "trip " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-site fault domains: one dark site must not take down checks that
// only touch the others, and a returning site must be caught up —
// deferred replay plus poisoned-cache reconciliation.

/// Two remote sites with explicit placement: r1/x1 at site 0, r2/x2 at
/// site 1. Each site gets its own injector (same config shape), so one
/// site's outage is invisible to the other's schedule.
struct TopologyRig {
  explicit TopologyRig(ResilienceConfig resilience)
      : injector0(FaultConfig{}), injector1(FaultConfig{}), mgr([&] {
          TopologyConfig topology;
          topology.sites = 2;
          topology.placement["r1"] = 0;
          topology.placement["r2"] = 1;
          topology.placement["x2"] = 1;
          return ConstraintManager({"l", "lx"}, CostModel{}, resilience,
                                   ParallelConfig{}, RemoteCacheConfig{},
                                   BudgetConfig{}, topology);
        }()) {
    EXPECT_TRUE(mgr.AddConstraint(
                       "a",
                       MustParse("panic :- l(X,Y) & r1(Z) & X <= Z & Z <= Y"))
                    .ok());
    EXPECT_TRUE(mgr.AddConstraint(
                       "b",
                       MustParse("panic :- l(X,Y) & r2(Z) & X <= Z & Z <= Y"))
                    .ok());
    EXPECT_TRUE(mgr.AddConstraint("c", MustParse("panic :- lx(X) & x2(X)"))
                    .ok());
    mgr.site().set_site_fault_injector(0, &injector0);
    mgr.site().set_site_fault_injector(1, &injector1);
    EXPECT_TRUE(mgr.site().db().Insert("r1", {V(1000)}).ok());
    EXPECT_TRUE(mgr.site().db().Insert("r2", {V(1000)}).ok());
    EXPECT_TRUE(mgr.site().db().Insert("x2", {V(5)}).ok());
  }
  FaultInjector injector0;
  FaultInjector injector1;
  ConstraintManager mgr;
};

TEST(FaultToleranceTest, DarkSiteDegradesOnlyChecksThatTouchIt) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 1;
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.cooldown_ticks = 2;
  resilience.auto_recheck = false;  // keep the queue inspectable
  TopologyRig rig(resilience);

  rig.injector1.ForceOutage(true);
  // One update fanning out to both sites: the site-0 check completes with
  // a real tier-3 verdict while the site-1 check defers — partial
  // degradation within a single update, the tentpole property.
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(5)}));
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_EQ(OutcomeOf(*reports, "a"), Outcome::kHolds);
  EXPECT_EQ(OutcomeOf(*reports, "b"), Outcome::kDeferred);
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 1u);
  EXPECT_EQ(rig.mgr.deferred_queue()[0].constraint, "b");

  // A second cross-site update opens site 1's breaker; site 0's stays
  // closed and its checks keep resolving at full fidelity.
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(6), V(9)})).ok());
  EXPECT_EQ(rig.mgr.site_breaker(1).state(), CircuitState::kOpen);
  EXPECT_EQ(rig.mgr.site_breaker(0).state(), CircuitState::kClosed);
  reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(11), V(14)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "a"), Outcome::kHolds);
  EXPECT_EQ(OutcomeOf(*reports, "b"), Outcome::kDeferred);
  // The dark site cost no trips once its breaker opened (fast-fail), and
  // site 0 kept paying real trips: per-site accounting stayed separate.
  EXPECT_GT(rig.mgr.stats().breaker_fast_fails, 0u);
  EXPECT_EQ(rig.mgr.site().site_stats(0).remote_failures, 0u);
  EXPECT_GT(rig.mgr.site().site_stats(1).remote_failures, 0u);
}

TEST(FaultToleranceTest, ReturningSiteIsCaughtUpDeferredAndCache) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 1;
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.cooldown_ticks = 2;
  TopologyRig rig(resilience);

  // Warm site 1's cache for x2 while everything is healthy (constraint
  // "c" reads it; lx(1) does not join x2's contents, so it holds).
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("lx", {V(1)})).ok());
  EXPECT_GT(rig.mgr.site().site_stats(1).remote_trips, 0u);

  // Site 1 goes dark; cross-site updates defer and open its breaker.
  rig.injector1.ForceOutage(true);
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(5)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(6), V(9)})).ok());
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("l", {V(11), V(14)})).ok());
  ASSERT_EQ(rig.mgr.site_breaker(1).state(), CircuitState::kOpen);
  size_t deferred = rig.mgr.deferred_queue().size();
  ASSERT_GT(deferred, 0u);

  // While the site is dark its x2 relation moves (a write applied at the
  // remote site, invisible to the checker): the cached snapshot is now
  // outdated, and nothing in the deferred queue reads x2, so only the
  // catch-up protocol can reconcile it.
  ASSERT_TRUE(rig.mgr.site().db().Insert("x2", {V(77)}).ok());

  // The site returns. Neutral updates tick the cooldown; the auto drain
  // probes the half-open breaker, replays the deferred checks, closes the
  // breaker, and the dark->closed edge triggers catch-up recovery.
  rig.injector1.ForceOutage(false);
  for (int i = 0; i < 20 && !rig.mgr.deferred_queue().empty(); ++i) {
    ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("audit", {V(i)})).ok());
  }
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
  EXPECT_EQ(rig.mgr.site_breaker(1).state(), CircuitState::kClosed);
  ManagerStats stats = rig.mgr.stats();
  EXPECT_EQ(stats.deferred_recovered, deferred);
  EXPECT_EQ(stats.deferred_violations, 0u);
  EXPECT_EQ(stats.sites_recovered, 1u);
  // The outdated x2 snapshot was revalidated by recovery, not by a check:
  // a subsequent read is a warm hit at the post-outage version.
  EXPECT_GE(stats.cache_revalidated, 1u);
  size_t trips_after_recovery = rig.mgr.site().site_stats(1).remote_trips;
  ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("lx", {V(2)})).ok());
  EXPECT_EQ(rig.mgr.site().site_stats(1).remote_trips, trips_after_recovery);
}

TEST(FaultToleranceTest, SimultaneousOutagesRecoverIndependently) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 1;
  resilience.breaker.failure_threshold = 1;
  resilience.breaker.cooldown_ticks = 2;
  TopologyRig rig(resilience);

  rig.injector0.ForceOutage(true);
  rig.injector1.ForceOutage(true);
  auto reports = rig.mgr.ApplyUpdate(Update::Insert("l", {V(1), V(5)}));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(OutcomeOf(*reports, "a"), Outcome::kDeferred);
  EXPECT_EQ(OutcomeOf(*reports, "b"), Outcome::kDeferred);

  // Site 0 returns first: its deferred check drains and it alone is
  // recovered; site 1's entry stays queued.
  rig.injector0.ForceOutage(false);
  for (int i = 0; i < 20 && rig.mgr.deferred_queue().size() > 1; ++i) {
    ASSERT_TRUE(rig.mgr.ApplyUpdate(Update::Insert("audit", {V(i)})).ok());
  }
  ASSERT_EQ(rig.mgr.deferred_queue().size(), 1u);
  EXPECT_EQ(rig.mgr.deferred_queue()[0].constraint, "b");
  EXPECT_EQ(rig.mgr.stats().sites_recovered, 1u);
  EXPECT_EQ(rig.mgr.site_breaker(0).state(), CircuitState::kClosed);
  EXPECT_NE(rig.mgr.site_breaker(1).state(), CircuitState::kClosed);

  // Then site 1: the remaining entry drains and the second recovery fires.
  rig.injector1.ForceOutage(false);
  for (int i = 0; i < 20 && !rig.mgr.deferred_queue().empty(); ++i) {
    ASSERT_TRUE(
        rig.mgr.ApplyUpdate(Update::Insert("audit", {V(100 + i)})).ok());
  }
  EXPECT_TRUE(rig.mgr.deferred_queue().empty());
  EXPECT_EQ(rig.mgr.stats().sites_recovered, 2u);
  EXPECT_EQ(rig.mgr.stats().deferred_recovered, 2u);
}

}  // namespace
}  // namespace ccpi
