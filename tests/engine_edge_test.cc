// Edge cases of the evaluation engine beyond eval_test's mainline
// coverage: 0-ary predicates, empty programs, seeded evaluation, the
// ablation switches, and duplicate-free derivation guarantees.

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/engine.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(EngineEdgeTest, ZeroAryPredicates) {
  Program p = MustParse(
      "panic :- alarm & p(X)\n"
      "alarm :- trigger(X) & X > 5\n");
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  auto quiet = IsViolated(p, db);
  ASSERT_TRUE(quiet.ok());
  EXPECT_FALSE(*quiet);
  ASSERT_TRUE(db.Insert("trigger", {V(10)}).ok());
  auto loud = IsViolated(p, db);
  ASSERT_TRUE(loud.ok());
  EXPECT_TRUE(*loud);
}

TEST(EngineEdgeTest, EmptyProgram) {
  Program p;
  auto idb = Evaluate(p, Database());
  ASSERT_TRUE(idb.ok());
  EXPECT_EQ(idb->TotalTuples(), 0u);
}

TEST(EngineEdgeTest, FactsOnlyProgram) {
  Program p = MustParse(
      "d(toy)\n"
      "d(shoe)\n");
  p.goal = "d";
  auto rel = EvaluateGoal(p, Database());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2u);
}

TEST(EngineEdgeTest, GoalNeverDefined) {
  Program p = MustParse("other(X) :- p(X)\n");
  p.goal = "missing";
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  auto rel = EvaluateGoal(p, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->empty());
}

TEST(EngineEdgeTest, ConstantOnlyRuleBody) {
  // A rule whose body is entirely ground comparisons.
  Program t = MustParse("panic :- p(X) & 3 < 5\n");
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  auto v = IsViolated(t, db);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Program f = MustParse("panic :- p(X) & 5 < 3\n");
  auto v2 = IsViolated(f, db);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(*v2);
}

TEST(EngineEdgeTest, DiamondDerivationsDeduplicate) {
  // Two derivation paths for the same tuple must yield one row.
  Program p = MustParse(
      "out(X) :- a(X)\n"
      "out(X) :- b(X)\n");
  p.goal = "out";
  Database db;
  ASSERT_TRUE(db.Insert("a", {V(1)}).ok());
  ASSERT_TRUE(db.Insert("b", {V(1)}).ok());
  auto rel = EvaluateGoal(p, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
}

TEST(EngineEdgeTest, CrossProductJoin) {
  Program p = MustParse("pair(X,Y) :- a(X) & b(Y)\n");
  p.goal = "pair";
  Database db;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(db.Insert("a", {V(i)}).ok());
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(db.Insert("b", {V(i)}).ok());
  auto rel = EvaluateGoal(p, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 35u);
}

TEST(EngineEdgeTest, NaiveAndSeminaiveSameClosure) {
  Program p = MustParse(
      "tc(X,Y) :- e(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & tc(Z,Y)\n");
  p.goal = "tc";
  Database db;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(db.Insert("e", {V(i), V(i + 1)}).ok());
  ASSERT_TRUE(db.Insert("e", {V(8), V(0)}).ok());  // cycle
  EvalOptions naive;
  naive.use_seminaive = false;
  auto a = EvaluateGoal(p, db);
  auto b = EvaluateGoal(p, db, naive);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), 81u);  // complete digraph on the 9-cycle
  EXPECT_EQ(a->size(), b->size());
}

TEST(EngineEdgeTest, SeededFactsFlowThroughStrata) {
  Program p = MustParse(
      "panic :- node(X) & not reach(X)\n"
      "reach(X) :- seed(X)\n"
      "reach(Y) :- reach(X) & e(X,Y)\n");
  Database db;
  ASSERT_TRUE(db.Insert("node", {V(1)}).ok());
  ASSERT_TRUE(db.Insert("node", {V(2)}).ok());
  ASSERT_TRUE(db.Insert("e", {V(1), V(2)}).ok());
  // Without a seed both nodes are unreached.
  auto v = IsViolated(p, db);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  // Seeding reach(1) through the IDB seed option reaches 2 as well.
  Database seed;
  ASSERT_TRUE(seed.Insert("reach", {V(1)}).ok());
  EvalOptions options;
  options.seed_idb = &seed;
  auto v2 = IsViolated(p, db, options);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(*v2);
}

TEST(EngineEdgeTest, ComparisonBetweenTwoBoundColumns) {
  Program p = MustParse("panic :- pair(X,Y) & Y < X");
  Database db;
  ASSERT_TRUE(db.Insert("pair", {V(1), V(2)}).ok());
  auto v = IsViolated(p, db);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);
  ASSERT_TRUE(db.Insert("pair", {V(5), V(2)}).ok());
  auto v2 = IsViolated(p, db);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v2);
}

TEST(EngineEdgeTest, NegatedZeroAryAtom) {
  Program p = MustParse("panic :- p(X) & not blocked\n");
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  auto v = IsViolated(p, db);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  ASSERT_TRUE(db.Insert("blocked", {}).ok());
  auto v2 = IsViolated(p, db);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(*v2);
}

}  // namespace
}  // namespace ccpi
