#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace ccpi {
namespace {

TEST(ValueTest, IntOrdering) {
  EXPECT_LT(V(1), V(2));
  EXPECT_LE(V(2), V(2));
  EXPECT_GT(V(3), V(-5));
  EXPECT_EQ(V(7), V(7));
  EXPECT_NE(V(7), V(8));
}

TEST(ValueTest, SymbolOrdering) {
  EXPECT_LT(V("accounting"), V("sales"));
  EXPECT_EQ(V("toy"), V("toy"));
  EXPECT_NE(V("toy"), V("shoe"));
}

TEST(ValueTest, IntsBelowSymbols) {
  // The cross-type convention making the order total.
  EXPECT_LT(V(1000000), V("a"));
  EXPECT_GT(V(""), V(-1));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(V(42).ToString(), "42");
  EXPECT_EQ(V(-3).ToString(), "-3");
  EXPECT_EQ(V("toy").ToString(), "toy");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(V(5).Hash(), V(5).Hash());
  EXPECT_EQ(V("x").Hash(), V("x").Hash());
}

TEST(RelationTest, InsertAndContains) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({V(1), V(2)}));
  EXPECT_FALSE(r.Insert({V(1), V(2)}));  // duplicate
  EXPECT_TRUE(r.Contains({V(1), V(2)}));
  EXPECT_FALSE(r.Contains({V(2), V(1)}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, Erase) {
  Relation r(1);
  r.Insert({V(1)});
  r.Insert({V(2)});
  EXPECT_TRUE(r.Erase({V(1)}));
  EXPECT_FALSE(r.Erase({V(1)}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Contains({V(1)}));
  EXPECT_TRUE(r.Contains({V(2)}));
}

TEST(RelationTest, ProbeIndex) {
  Relation r(2);
  r.Insert({V(1), V("a")});
  r.Insert({V(1), V("b")});
  r.Insert({V(2), V("a")});
  EXPECT_EQ(r.Probe(0, V(1)).size(), 2u);
  EXPECT_EQ(r.Probe(0, V(2)).size(), 1u);
  EXPECT_EQ(r.Probe(0, V(3)).size(), 0u);
  EXPECT_EQ(r.Probe(1, V("a")).size(), 2u);
}

TEST(RelationTest, ProbeAfterMutation) {
  Relation r(1);
  r.Insert({V(1)});
  EXPECT_EQ(r.Probe(0, V(1)).size(), 1u);
  r.Insert({V(1)});  // duplicate: no change
  EXPECT_EQ(r.Probe(0, V(1)).size(), 1u);
  r.Erase({V(1)});
  EXPECT_EQ(r.Probe(0, V(1)).size(), 0u);
}

TEST(RelationTest, VersionBumpsOnContentChangeOnly) {
  Relation r(1);
  uint64_t v0 = r.version();
  EXPECT_EQ(v0, 0u);  // never mutated

  EXPECT_TRUE(r.Insert({V(1)}));
  uint64_t v1 = r.version();
  EXPECT_NE(v1, v0);

  EXPECT_FALSE(r.Insert({V(1)}));  // duplicate: contents unchanged
  EXPECT_EQ(r.version(), v1);
  EXPECT_FALSE(r.Erase({V(2)}));  // absent: contents unchanged
  EXPECT_EQ(r.version(), v1);
  (void)r.Probe(0, V(1));  // reads never bump
  EXPECT_EQ(r.version(), v1);

  EXPECT_TRUE(r.Erase({V(1)}));
  uint64_t v2 = r.version();
  EXPECT_NE(v2, v1);

  r.Clear();  // already empty: unchanged
  EXPECT_EQ(r.version(), v2);
  r.Insert({V(3)});
  r.Clear();  // non-empty: a content change
  EXPECT_NE(r.version(), v2);
}

TEST(RelationTest, VersionsAreGloballyUniquePerContentChange) {
  // The stamp source is process-wide: two relations that went through
  // different mutation histories never share a version, so a cache keyed
  // on versions cannot confuse a scratch copy with the live relation.
  Relation a(1);
  Relation b(1);
  a.Insert({V(1)});
  b.Insert({V(1)});  // same contents, different histories
  EXPECT_NE(a.version(), b.version());
}

TEST(RelationTest, CopiesCarryTheVersion) {
  Relation r(2);
  r.Insert({V(1), V(2)});
  Relation copy = r;
  // Identical contents by construction: the copy may share the stamp...
  EXPECT_EQ(copy.version(), r.version());
  Relation assigned(2);
  assigned = r;
  EXPECT_EQ(assigned.version(), r.version());
  // ...until either side diverges.
  copy.Insert({V(3), V(4)});
  EXPECT_NE(copy.version(), r.version());
}

TEST(DatabaseTest, InsertCreatesRelation) {
  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("jones"), V("shoe"), V(50)}).ok());
  EXPECT_TRUE(db.Contains("emp", {V("jones"), V("shoe"), V(50)}));
  EXPECT_EQ(db.Get("emp", 3).size(), 1u);
}

TEST(DatabaseTest, ArityMismatchRejected) {
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  Status st = db.Insert("p", {V(1), V(2)});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, MissingRelationIsEmpty) {
  Database db;
  EXPECT_TRUE(db.Get("nothing", 2).empty());
  EXPECT_EQ(db.Get("nothing", 2).arity(), 2u);
}

TEST(DatabaseTest, EraseMissingIsOk) {
  Database db;
  EXPECT_TRUE(db.Erase("ghost", {V(1)}).ok());
}

TEST(DatabaseTest, TotalTuples) {
  Database db;
  ASSERT_TRUE(db.Insert("p", {V(1)}).ok());
  ASSERT_TRUE(db.Insert("p", {V(2)}).ok());
  ASSERT_TRUE(db.Insert("q", {V(1), V(2)}).ok());
  EXPECT_EQ(db.TotalTuples(), 3u);
}

}  // namespace
}  // namespace ccpi
