// The accounting half of the distributed-site simulator: AccessStats
// arithmetic and cost pricing, CostModel defaults, SiteDatabase stat
// accumulation/reset, and the determinism contract of the FaultInjector
// (the failure schedule is a pure function of the seed).

#include <gtest/gtest.h>

#include "distsim/fault_injector.h"
#include "distsim/site_db.h"

namespace ccpi {
namespace {

TEST(AccessStatsTest, CostPricesEachComponent) {
  AccessStats stats;
  stats.local_tuples = 1000;
  stats.remote_tuples = 20;
  stats.remote_trips = 3;
  CostModel model;
  model.local_tuple_cost = 0.5;
  model.remote_tuple_cost = 2.0;
  model.remote_round_trip_cost = 100.0;
  EXPECT_DOUBLE_EQ(stats.Cost(model), 1000 * 0.5 + 20 * 2.0 + 3 * 100.0);
}

TEST(AccessStatsTest, FailedTripsPayTheRoundTripButFetchNothing) {
  // A failed trip is included in remote_trips (the latency was spent) but
  // adds no remote tuples; remote_failures itself carries no extra cost.
  AccessStats ok_trip{0, 50, 1, 0};
  AccessStats failed_trip{0, 0, 1, 1};
  CostModel model;
  EXPECT_DOUBLE_EQ(failed_trip.Cost(model), model.remote_round_trip_cost);
  EXPECT_GT(ok_trip.Cost(model), failed_trip.Cost(model));
}

TEST(AccessStatsTest, AccumulateSumsAllFields) {
  AccessStats a{10, 20, 3, 1};
  AccessStats b{1, 2, 4, 2};
  a += b;
  EXPECT_EQ(a.local_tuples, 11u);
  EXPECT_EQ(a.remote_tuples, 22u);
  EXPECT_EQ(a.remote_trips, 7u);
  EXPECT_EQ(a.remote_failures, 3u);
}

TEST(CostModelTest, DefaultsKeepTheLocalRemoteGap) {
  // The defaults encode the paper's motivation: a remote round trip is
  // orders of magnitude above a local tuple read.
  CostModel model;
  EXPECT_DOUBLE_EQ(model.local_tuple_cost, 0.001);
  EXPECT_DOUBLE_EQ(model.remote_tuple_cost, 0.1);
  EXPECT_DOUBLE_EQ(model.remote_round_trip_cost, 10.0);
  EXPECT_GT(model.remote_tuple_cost, model.local_tuple_cost);
  EXPECT_GT(model.remote_round_trip_cost, 1000 * model.local_tuple_cost);
}

TEST(SiteDatabaseTest, StatsAccumulateAndReset) {
  SiteDatabase site({"l"});
  ASSERT_TRUE(site.OnRead("l", 5).ok());
  ASSERT_TRUE(site.OnRead("r", 7).ok());
  ASSERT_TRUE(site.OnRead("r", 2).ok());
  EXPECT_EQ(site.stats().local_tuples, 5u);
  EXPECT_EQ(site.stats().remote_tuples, 9u);
  EXPECT_EQ(site.stats().remote_trips, 2u);
  EXPECT_EQ(site.stats().remote_failures, 0u);
  site.ResetStats();
  EXPECT_EQ(site.stats().local_tuples, 0u);
  EXPECT_EQ(site.stats().remote_tuples, 0u);
  EXPECT_EQ(site.stats().remote_trips, 0u);
}

TEST(SiteDatabaseTest, FailedRemoteReadChargesTheTrip) {
  FaultInjector injector(FaultConfig{});
  injector.ForceOutage(true);
  SiteDatabase site({"l"});
  site.set_fault_injector(&injector);
  // Local reads never fail, even under a hard outage.
  EXPECT_TRUE(site.OnRead("l", 3).ok());
  Status s = site.OnRead("r", 10);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(site.stats().remote_trips, 1u);
  EXPECT_EQ(site.stats().remote_failures, 1u);
  EXPECT_EQ(site.stats().remote_tuples, 0u);  // nothing came back
}

// ---- RemoteReadCache + the SiteDatabase cached read path ----------------

TEST(RemoteReadCacheTest, LookupStates) {
  RemoteReadCache cache;
  EXPECT_EQ(cache.Find("r", 5), RemoteReadCache::Lookup::kMissCold);
  cache.NoteFill("r", 5);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find("r", 5), RemoteReadCache::Lookup::kHit);
  EXPECT_EQ(cache.Find("r", 6), RemoteReadCache::Lookup::kMissStale);
  // A failed fetch poisons the entry: even the filled version misses.
  cache.NoteFailure("r");
  EXPECT_EQ(cache.Find("r", 5), RemoteReadCache::Lookup::kMissStale);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find("r", 5), RemoteReadCache::Lookup::kMissCold);
}

TEST(SiteDatabaseTest, CachedReadSkipsTheTripUntilInvalidated) {
  SiteDatabase site({"l"});
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("r", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("r", {V(2)}).ok());

  ASSERT_TRUE(site.OnRead("r", 2).ok());  // cold: physical fetch + fill
  ASSERT_TRUE(site.OnRead("r", 2).ok());  // unchanged: served locally
  AccessStats stats = site.stats();
  EXPECT_EQ(stats.remote_trips, 1u);
  EXPECT_EQ(stats.remote_tuples, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cached_tuples, 2u);

  // Mutating the relation bumps its version: the entry is stale and the
  // next read pays a real trip again.
  ASSERT_TRUE(site.db().Insert("r", {V(3)}).ok());
  ASSERT_TRUE(site.OnRead("r", 3).ok());
  stats = site.stats();
  EXPECT_EQ(stats.remote_trips, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);

  // A no-op write (duplicate insert) does not invalidate.
  Status dup = site.db().Insert("r", {V(3)});
  ASSERT_TRUE(site.OnRead("r", 3).ok());
  EXPECT_EQ(site.stats().remote_trips, 2u);
  EXPECT_EQ(site.stats().cache_hits, 2u);
  (void)dup;
}

TEST(SiteDatabaseTest, FailedFillLeavesEntryUnusable) {
  FaultInjector injector(FaultConfig{});
  SiteDatabase site({"l"});
  site.set_fault_injector(&injector);
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("r", {V(1)}).ok());

  injector.ForceOutage(true);
  EXPECT_EQ(site.ReadRemote("r", 1).code(), StatusCode::kUnavailable);
  injector.ForceOutage(false);
  // The failed fill must not be served as a hit: this read goes physical.
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());
  AccessStats stats = site.stats();
  EXPECT_EQ(stats.remote_trips, 2u);
  EXPECT_EQ(stats.remote_failures, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  // Now the fill succeeded, so the next read hits — but it still consumes
  // one draw of the failure schedule (draw alignment with cache-off runs).
  uint64_t draws_before = injector.stats().trips;
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());
  EXPECT_EQ(site.stats().cache_hits, 1u);
  EXPECT_EQ(injector.stats().trips, draws_before + 1);
}

TEST(SiteDatabaseTest, FaultedCacheHitPoisonsTheEntry) {
  FaultInjector injector(FaultConfig{});
  SiteDatabase site({"l"});
  site.set_fault_injector(&injector);
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("r", {V(1)}).ok());
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());  // fill

  // The revalidation draw faults: billed as a failed physical trip, and
  // the entry is no longer trusted.
  injector.ForceOutage(true);
  EXPECT_EQ(site.ReadRemote("r", 1).code(), StatusCode::kUnavailable);
  injector.ForceOutage(false);
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());
  AccessStats stats = site.stats();
  EXPECT_EQ(stats.remote_trips, 3u);  // fill + faulted hit + refill
  EXPECT_EQ(stats.remote_failures, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(SiteDatabaseTest, PrefetchFetchesEachRelationAtMostOnce) {
  SiteDatabase site({"l"});
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("r", {V(1)}).ok());
  ASSERT_TRUE(site.db().Insert("r", {V(2)}).ok());
  ASSERT_TRUE(site.db().Insert("dept", {V("cs")}).ok());
  ASSERT_TRUE(site.db().Insert("l", {V(1), V(2)}).ok());

  site.PrefetchRemote({"r", "dept", "l"});
  AccessStats stats = site.stats();
  EXPECT_EQ(stats.remote_trips, 2u);   // r and dept; local l skipped
  EXPECT_EQ(stats.remote_tuples, 3u);  // whole relations fetched
  EXPECT_EQ(stats.local_tuples, 0u);   // prefetch never bills local reads

  // Already valid: a second prefetch is free, and the fan-out's own
  // reads are hits.
  site.PrefetchRemote({"r", "dept"});
  EXPECT_EQ(site.stats().remote_trips, 2u);
  ASSERT_TRUE(site.OnRead("r", 2).ok());
  ASSERT_TRUE(site.OnRead("dept", 1).ok());
  EXPECT_EQ(site.stats().remote_trips, 2u);
  EXPECT_EQ(site.stats().cache_hits, 2u);
}

TEST(SiteDatabaseTest, DisablingTheCacheDropsItsEntries) {
  SiteDatabase site({"l"});
  site.EnableRemoteCache(true);
  ASSERT_TRUE(site.db().Insert("r", {V(1)}).ok());
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());  // fill
  site.EnableRemoteCache(false);
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());  // physical: cache is off
  site.EnableRemoteCache(true);
  // Re-enabling starts cold; the old fill must not resurface as a hit.
  ASSERT_TRUE(site.ReadRemote("r", 1).ok());
  AccessStats stats = site.stats();
  EXPECT_EQ(stats.remote_trips, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(AccessStatsTest, CachedTuplesArePricedBelowRemote) {
  AccessStats cached;
  cached.cache_hits = 1;
  cached.cached_tuples = 100;
  AccessStats fetched;
  fetched.remote_trips = 1;
  fetched.remote_tuples = 100;
  CostModel model;
  EXPECT_DOUBLE_EQ(cached.Cost(model), 100 * model.cached_tuple_cost);
  EXPECT_LT(cached.Cost(model), fetched.Cost(model));
  // Cached reads are priced like local ones: the data is already here.
  EXPECT_DOUBLE_EQ(model.cached_tuple_cost, model.local_tuple_cost);
}

TEST(AccessStatsTest, AccumulateSumsCacheFields) {
  AccessStats a;
  a.cache_hits = 2;
  a.cached_tuples = 10;
  AccessStats b;
  b.cache_hits = 3;
  b.cached_tuples = 5;
  a += b;
  EXPECT_EQ(a.cache_hits, 5u);
  EXPECT_EQ(a.cached_tuples, 15u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultConfig config;
  config.seed = 42;
  config.transient_rate = 0.3;
  config.timeout_rate = 0.2;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.NextTrip(), b.NextTrip()) << "trip " << i;
  }
  EXPECT_EQ(a.stats().transient_faults, b.stats().transient_faults);
  EXPECT_EQ(a.stats().timeouts, b.stats().timeouts);
  // The rates actually materialize.
  EXPECT_GT(a.stats().transient_faults, 0u);
  EXPECT_GT(a.stats().timeouts, 0u);
  EXPECT_LT(a.stats().injected(), 500u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultConfig config;
  config.transient_rate = 0.5;
  config.seed = 1;
  FaultInjector a(config);
  config.seed = 2;
  FaultInjector b(config);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.NextTrip() != b.NextTrip();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, OutageWindowsOverrideTheRandomSchedule) {
  FaultConfig config;
  config.transient_rate = 0.5;
  config.outages.push_back(OutageWindow{3, 6});
  FaultInjector injector(config);
  for (uint64_t i = 0; i < 10; ++i) {
    FaultKind kind = injector.NextTrip();
    if (i >= 3 && i < 6) {
      EXPECT_EQ(kind, FaultKind::kOutage) << "trip " << i;
    } else {
      EXPECT_NE(kind, FaultKind::kOutage) << "trip " << i;
    }
  }
  EXPECT_EQ(injector.stats().outage_faults, 3u);
  EXPECT_EQ(injector.stats().trips, 10u);
}

TEST(FaultInjectorTest, OutageWindowConsumesTheTripsDraw) {
  // Determinism requires exactly one RNG draw per trip, including trips
  // decided by an outage window: the post-window schedule must not depend
  // on whether a window was configured.
  FaultConfig with;
  with.seed = 9;
  with.transient_rate = 0.4;
  with.outages.push_back(OutageWindow{0, 50});
  FaultConfig without = with;
  without.outages.clear();
  FaultInjector a(with);
  FaultInjector b(without);
  for (int i = 0; i < 50; ++i) {
    a.NextTrip();
    b.NextTrip();
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextTrip(), b.NextTrip()) << "post-window trip " << i;
  }
}

TEST(FaultInjectorTest, StatusMappingMatchesTheFaultTaxonomy) {
  FaultConfig config;
  config.timeout_rate = 1.0;  // every trip times out
  FaultInjector timeouts(config);
  Status s = timeouts.InjectOnRead("r");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetriable(s.code()));

  FaultInjector down(FaultConfig{});
  down.ForceOutage(true);
  s = down.InjectOnRead("r");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetriable(s.code()));
  down.ForceOutage(false);
  EXPECT_TRUE(down.InjectOnRead("r").ok());
}

}  // namespace
}  // namespace ccpi
