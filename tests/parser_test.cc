#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/parser.h"

namespace ccpi {
namespace {

TEST(ParserTest, Example21NoDualDepartments) {
  // Example 2.1 of the paper.
  auto program = ParseProgram(
      "panic :- emp(E,sales) & emp(E,accounting)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 1u);
  const Rule& rule = program->rules[0];
  EXPECT_EQ(rule.head.pred, "panic");
  EXPECT_TRUE(rule.head.args.empty());
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.body[0].atom.pred, "emp");
  EXPECT_TRUE(rule.body[0].atom.args[0].is_var());
  EXPECT_EQ(rule.body[0].atom.args[0].var(), "E");
  EXPECT_TRUE(rule.body[0].atom.args[1].is_const());
  EXPECT_EQ(rule.body[0].atom.args[1].constant(), V("sales"));
}

TEST(ParserTest, Example22NegationAndComparison) {
  // Example 2.2: negated subgoal and arithmetic comparison.
  auto rule = ParseRule("panic :- emp(E,D,S) & not dept(D) & S < 100");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->body.size(), 3u);
  EXPECT_TRUE(rule->body[1].is_negated());
  EXPECT_EQ(rule->body[1].atom.pred, "dept");
  ASSERT_TRUE(rule->body[2].is_comparison());
  EXPECT_EQ(rule->body[2].cmp.op, CmpOp::kLt);
  EXPECT_EQ(rule->body[2].cmp.rhs.constant(), V(100));
}

TEST(ParserTest, Example23SalaryRangeUnion) {
  // Example 2.3: two rules forming a union of CQs with arithmetic.
  auto program = ParseProgram(
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low\n"
      "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules.size(), 2u);
  EXPECT_TRUE(program->HasArithmetic());
  EXPECT_FALSE(program->HasNegation());
  EXPECT_FALSE(program->IsRecursive());
}

TEST(ParserTest, Example24RecursiveBoss) {
  // Example 2.4: recursive datalog.
  auto program = ParseProgram(
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsRecursive());
  EXPECT_EQ(program->IdbPredicates(),
            (std::set<std::string>{"panic", "boss"}));
  EXPECT_EQ(program->EdbPredicates(),
            (std::set<std::string>{"emp", "manager"}));
}

TEST(ParserTest, FactWithoutBody) {
  auto program = ParseProgram("dept1(toy)");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->rules[0].body.empty());
  EXPECT_EQ(program->rules[0].head.args[0].constant(), V("toy"));
}

TEST(ParserTest, CommaSeparatorAndPeriod) {
  auto rule = ParseRule("panic :- p(X), q(X).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body.size(), 2u);
}

TEST(ParserTest, MultiLineRuleAfterConnective) {
  auto rule = ParseRule(
      "panic :- emp(E,D,S) &\n"
      "         salRange(D,Low,High) &\n"
      "         S < Low");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body.size(), 3u);
}

TEST(ParserTest, AllComparisonOperators) {
  auto rule = ParseRule(
      "panic :- p(A,B,C,D,E,F) & A < B & B <= C & C > D & D >= E & E = F & "
      "A <> F");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->body.size(), 7u);
  EXPECT_EQ(rule->body[1].cmp.op, CmpOp::kLt);
  EXPECT_EQ(rule->body[2].cmp.op, CmpOp::kLe);
  EXPECT_EQ(rule->body[3].cmp.op, CmpOp::kGt);
  EXPECT_EQ(rule->body[4].cmp.op, CmpOp::kGe);
  EXPECT_EQ(rule->body[5].cmp.op, CmpOp::kEq);
  EXPECT_EQ(rule->body[6].cmp.op, CmpOp::kNe);
}

TEST(ParserTest, BangEqualsAlias) {
  auto rule = ParseRule("panic :- p(X,Y) & X != Y");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[1].cmp.op, CmpOp::kNe);
}

TEST(ParserTest, NegativeIntegerConstant) {
  auto rule = ParseRule("panic :- p(X) & X < -5");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[1].cmp.rhs.constant(), V(-5));
}

TEST(ParserTest, ConstantOnLeftOfComparison) {
  auto rule = ParseRule("panic :- p(X) & 5 < X");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[1].cmp.lhs.constant(), V(5));
}

TEST(ParserTest, SymbolConstantComparison) {
  // Example 4.1's single-rule encoding uses D <> toy.
  auto rule = ParseRule("panic :- emp(E,D,S) & not dept(D) & D <> toy");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[2].cmp.rhs.constant(), V("toy"));
}

TEST(ParserTest, CommentsIgnored) {
  auto program = ParseProgram(
      "% referential integrity\n"
      "panic :- emp(E,D,S) & not dept(D)  # trailing comment\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules.size(), 1u);
}

TEST(ParserTest, ZeroAryGoalInBody) {
  auto program = ParseProgram(
      "panic :- subpanic\n"
      "subpanic :- p(X)\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules[0].body[0].atom.pred, "subpanic");
  EXPECT_TRUE(program->rules[0].body[0].atom.args.empty());
}

TEST(ParserTest, ErrorOnMissingParen) {
  auto program = ParseProgram("panic :- p(X");
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, ErrorOnCapitalPredicate) {
  auto program = ParseProgram("Panic :- p(X)");
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, ErrorOnDanglingConnective) {
  auto program = ParseProgram("panic :- p(X) &");
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char* text = "panic :- emp(E,D,S) & not dept(D) & S < 100";
  auto rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  auto again = ParseRule(rule->ToString());
  ASSERT_TRUE(again.ok()) << "printer output did not re-parse: "
                          << rule->ToString();
  EXPECT_EQ(again->ToString(), rule->ToString());
}

TEST(ParserTest, ParseRuleRejectsMultiple) {
  auto rule = ParseRule("panic :- p(X)\npanic :- q(X)\n");
  EXPECT_FALSE(rule.ok());
}

}  // namespace
}  // namespace ccpi
