#include <gtest/gtest.h>

#include "manager/script.h"

namespace ccpi {
namespace {

TEST(ScriptParseTest, FullWorkload) {
  auto script = ParseScript(
      "# a comment\n"
      "local reserved emp\n"
      "constraint no-overlap\n"
      "panic :- reserved(P,Lo,Hi) & order(P,Q) & Lo <= Q & Q <= Hi\n"
      "constraint sane\n"
      "panic :- reserved(P,Lo,Hi) & Hi < Lo\n"
      "fact order(widget, 700)\n"
      "insert reserved(widget, 0, 400)\n"
      "delete reserved(widget, 0, 400)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->local_preds,
            (std::set<std::string>{"reserved", "emp"}));
  ASSERT_EQ(script->constraints.size(), 2u);
  EXPECT_EQ(script->constraints[0].first, "no-overlap");
  EXPECT_EQ(script->constraints[1].first, "sane");
  EXPECT_TRUE(script->initial.Contains("order", {V("widget"), V(700)}));
  ASSERT_EQ(script->updates.size(), 2u);
  EXPECT_EQ(script->updates[0].kind, Update::Kind::kInsert);
  EXPECT_EQ(script->updates[1].kind, Update::Kind::kDelete);
}

TEST(ScriptParseTest, MultiLineRule) {
  auto script = ParseScript(
      "constraint c\n"
      "panic :- reserved(P,Lo,Hi) &\n"
      "         order(P,Q) &\n"
      "         Lo <= Q & Q <= Hi\n"
      "insert reserved(a, 1, 2)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->constraints.size(), 1u);
  EXPECT_EQ(script->constraints[0].second.rules[0].body.size(), 4u);
  EXPECT_EQ(script->updates.size(), 1u);
}

TEST(ScriptParseTest, MultipleRulesPerConstraint) {
  auto script = ParseScript(
      "constraint range\n"
      "panic :- emp(E,D,S) & salRange(D,Lo,Hi) & S < Lo\n"
      "panic :- emp(E,D,S) & salRange(D,Lo,Hi) & S > Hi\n");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->constraints[0].second.rules.size(), 2u);
}

TEST(ScriptParseTest, Errors) {
  EXPECT_FALSE(ParseScript("panic :- p(X)\n").ok());  // rule outside block
  EXPECT_FALSE(ParseScript("constraint\n").ok());     // missing name
  EXPECT_FALSE(ParseScript("fact p(X)\n").ok());      // non-ground fact
  EXPECT_FALSE(
      ParseScript("insert p(X) :- q(X)\n").ok());     // rule, not a fact
  EXPECT_FALSE(ParseScript("constraint empty\nfact p(1)\n").ok());
}

TEST(ScriptRunTest, EndToEnd) {
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "fact r(7)\n"
      "insert l(10, 20)\n"   // ok (7 outside)
      "insert l(12, 18)\n"   // ok, resolved locally (covered)
      "insert l(5, 8)\n");   // rejected: 7 in range
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->updates_applied, 2u);
  EXPECT_EQ(report->updates_rejected, 1u);
  EXPECT_NE(report->text.find("REJECT +l(5, 8)"), std::string::npos);
  EXPECT_NE(report->text.find("tier local-test"), std::string::npos);
}

TEST(ScriptRunTest, SubsumedConstraintReported) {
  auto script = ParseScript(
      "local emp\n"
      "constraint cap-200\n"
      "panic :- emp(E,S) & S > 200\n"
      "constraint cap-500\n"
      "panic :- emp(E,S) & S > 500\n"
      "insert emp(ann, 100)\n");
  ASSERT_TRUE(script.ok());
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->text.find("cap-500 (redundant"), std::string::npos);
}

}  // namespace
}  // namespace ccpi
