#include <gtest/gtest.h>

#include "manager/script.h"

namespace ccpi {
namespace {

TEST(ScriptParseTest, FullWorkload) {
  auto script = ParseScript(
      "# a comment\n"
      "local reserved emp\n"
      "constraint no-overlap\n"
      "panic :- reserved(P,Lo,Hi) & order(P,Q) & Lo <= Q & Q <= Hi\n"
      "constraint sane\n"
      "panic :- reserved(P,Lo,Hi) & Hi < Lo\n"
      "fact order(widget, 700)\n"
      "insert reserved(widget, 0, 400)\n"
      "delete reserved(widget, 0, 400)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->local_preds,
            (std::set<std::string>{"reserved", "emp"}));
  ASSERT_EQ(script->constraints.size(), 2u);
  EXPECT_EQ(script->constraints[0].first, "no-overlap");
  EXPECT_EQ(script->constraints[1].first, "sane");
  EXPECT_TRUE(script->initial.Contains("order", {V("widget"), V(700)}));
  ASSERT_EQ(script->updates.size(), 2u);
  EXPECT_EQ(script->updates[0].kind, Update::Kind::kInsert);
  EXPECT_EQ(script->updates[1].kind, Update::Kind::kDelete);
}

TEST(ScriptParseTest, MultiLineRule) {
  auto script = ParseScript(
      "constraint c\n"
      "panic :- reserved(P,Lo,Hi) &\n"
      "         order(P,Q) &\n"
      "         Lo <= Q & Q <= Hi\n"
      "insert reserved(a, 1, 2)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->constraints.size(), 1u);
  EXPECT_EQ(script->constraints[0].second.rules[0].body.size(), 4u);
  EXPECT_EQ(script->updates.size(), 1u);
}

TEST(ScriptParseTest, MultipleRulesPerConstraint) {
  auto script = ParseScript(
      "constraint range\n"
      "panic :- emp(E,D,S) & salRange(D,Lo,Hi) & S < Lo\n"
      "panic :- emp(E,D,S) & salRange(D,Lo,Hi) & S > Hi\n");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->constraints[0].second.rules.size(), 2u);
}

TEST(ScriptParseTest, Errors) {
  EXPECT_FALSE(ParseScript("panic :- p(X)\n").ok());  // rule outside block
  EXPECT_FALSE(ParseScript("constraint\n").ok());     // missing name
  EXPECT_FALSE(ParseScript("fact p(X)\n").ok());      // non-ground fact
  EXPECT_FALSE(
      ParseScript("insert p(X) :- q(X)\n").ok());     // rule, not a fact
  EXPECT_FALSE(ParseScript("constraint empty\nfact p(1)\n").ok());
}

TEST(ScriptRunTest, EndToEnd) {
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "fact r(7)\n"
      "insert l(10, 20)\n"   // ok (7 outside)
      "insert l(12, 18)\n"   // ok, resolved locally (covered)
      "insert l(5, 8)\n");   // rejected: 7 in range
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->updates_applied, 2u);
  EXPECT_EQ(report->updates_rejected, 1u);
  EXPECT_NE(report->text.find("REJECT +l(5, 8)"), std::string::npos);
  EXPECT_NE(report->text.find("tier local-test"), std::string::npos);
}

/// A miniature of examples/workloads/overload.ccpi: every insert into the
/// local request relation forces a recursive tier-3 fixpoint over a remote
/// edge chain, so a one-round budget must shed it.
const char* kOverloadScript =
    "local request\n"
    "constraint no-path-to-blocked\n"
    "path(X,Y) :- edge(X,Y)\n"
    "path(X,Y) :- edge(X,Z) & path(Z,Y)\n"
    "panic :- request(U,N) & path(N,M) & blocked(M)\n"
    "fact edge(a, b)\n"
    "fact edge(b, c)\n"
    "fact edge(c, d)\n"
    "fact edge(d, e)\n"
    "fact blocked(z)\n"
    "insert request(u1, a)\n"
    "insert request(u2, b)\n";

TEST(ScriptRunTest, BudgetShedsAreReportedDistinctlyFromDeferrals) {
  auto script = ParseScript(kOverloadScript);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.budget.per_check.max_fixpoint_rounds = 1;
  options.print_stats = true;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->budget_armed);
  EXPECT_GT(report->shed_checks, 0u);
  EXPECT_GT(report->budget_exhausted, 0u);
  EXPECT_EQ(report->deferred_dropped, 0u);
  // A shed check reads "shed:", never "deferred:" (no site was down), and
  // stays pending: the shutdown drain re-attempts it under the same budget.
  EXPECT_NE(report->text.find(" shed:no-path-to-blocked"), std::string::npos)
      << report->text;
  EXPECT_EQ(report->text.find(" deferred:"), std::string::npos);
  EXPECT_NE(report->text.find("PENDING"), std::string::npos);
  EXPECT_NE(report->summary_text.find("budget: "), std::string::npos);
}

TEST(ScriptRunTest, UnbudgetedRunNeverMentionsBudgets) {
  auto script = ParseScript(kOverloadScript);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.print_stats = true;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->budget_armed);
  EXPECT_EQ(report->shed_checks, 0u);
  EXPECT_EQ(report->updates_applied, 2u);
  EXPECT_EQ(report->text.find(" shed:"), std::string::npos);
  EXPECT_EQ(report->summary_text.find("budget: "), std::string::npos);
}

TEST(ScriptRunTest, QueueCapAloneArmsBudgetReporting) {
  // --deferred-queue-cap with no other budget still arms the report (the
  // cap can drop or refuse work, so the run must disclose its counters).
  auto script = ParseScript(kOverloadScript);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.budget.deferred_queue_cap = 4;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->budget_armed);
  EXPECT_EQ(report->shed_checks, 0u);
  EXPECT_EQ(report->updates_applied, 2u);
}

TEST(ScriptRunTest, SubsumedConstraintReported) {
  auto script = ParseScript(
      "local emp\n"
      "constraint cap-200\n"
      "panic :- emp(E,S) & S > 200\n"
      "constraint cap-500\n"
      "panic :- emp(E,S) & S > 500\n"
      "insert emp(ann, 100)\n");
  ASSERT_TRUE(script.ok());
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->text.find("cap-500 (redundant"), std::string::npos);
}

// ---- plan_cache directive and --plan-cache flag --------------------------

TEST(ScriptParseTest, PlanCacheDirective) {
  auto off = ParseScript("plan_cache off\nlocal l\n");
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(off->plan_cache.has_value());
  EXPECT_FALSE(*off->plan_cache);
  auto on = ParseScript("plan_cache on\nlocal l\n");
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(on->plan_cache.has_value());
  EXPECT_TRUE(*on->plan_cache);
  auto unset = ParseScript("local l\n");
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->plan_cache.has_value());
}

TEST(ScriptParseTest, PlanCacheDirectiveRejectsBadValue) {
  auto bad = ParseScript("local l\nplan_cache maybe\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending line, like the other directives.
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().message();
  EXPECT_NE(bad.status().message().find("plan_cache"), std::string::npos);
}

TEST(ScriptRunTest, PlanCacheFlagOverridesScriptDirective) {
  // The script turns the cache off; the summary's "plans:" diagnostics
  // line exists only while the cache is on, so it observes the effective
  // switch. An explicit --plan-cache=on flag must win over the directive.
  const char* text =
      "plan_cache off\n"
      "local l\n"
      "constraint join\n"
      "panic :- l(X,Y) & r(Y)\n"
      "insert l(1, 2)\n"
      "insert l(3, 4)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.print_stats = true;
  auto off = RunScript(*script, options);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->summary_text.find("plans:"), std::string::npos);
  options.plan_cache.enabled = true;
  options.plan_cache_from_flags = true;
  auto on = RunScript(*script, options);
  ASSERT_TRUE(on.ok());
  EXPECT_NE(on->summary_text.find("plans:"), std::string::npos);
  // Flags win, directives change behavior, but the report proper must not
  // move: the per-update log is byte-identical either way.
  EXPECT_EQ(off->log_text, on->log_text);
}

// ---- pipeline directive and --pipeline-depth flag -------------------------

TEST(ScriptParseTest, PipelineDirective) {
  auto four = ParseScript("pipeline 4\nlocal l\n");
  ASSERT_TRUE(four.ok());
  ASSERT_TRUE(four->pipeline_depth.has_value());
  EXPECT_EQ(*four->pipeline_depth, 4u);
  auto unset = ParseScript("local l\n");
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->pipeline_depth.has_value());
}

TEST(ScriptParseTest, PipelineDirectiveRejectsBadValue) {
  for (const char* text : {"local l\npipeline 0\n", "local l\npipeline abc\n",
                           "local l\npipeline\n", "local l\npipeline -3\n"}) {
    auto bad = ParseScript(text);
    EXPECT_FALSE(bad.ok()) << text;
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
        << bad.status().message();
    EXPECT_NE(bad.status().message().find("pipeline"), std::string::npos)
        << bad.status().message();
  }
}

TEST(ScriptRunTest, PipelinedRunMatchesSerialByteForByte) {
  // The whole point of the serialized commit map: the report — log and
  // summary both — is byte-identical at any pipeline depth.
  const char* text =
      "local l\n"
      "constraint ord\n"
      "panic :- l(X,Y) & X > Y\n"
      "constraint join\n"
      "panic :- l(X,Y) & r(Y)\n"
      "fact r(7)\n"
      "insert l(1, 2)\n"
      "insert l(5, 3)\n"
      "insert l(4, 7)\n"
      "insert l(2, 9)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.print_stats = true;
  auto serial = RunScript(*script, options);
  ASSERT_TRUE(serial.ok());
  options.pipeline.depth = 8;
  options.pipeline_from_flags = true;
  auto piped = RunScript(*script, options);
  ASSERT_TRUE(piped.ok());
  EXPECT_EQ(serial->text, piped->text);
}

TEST(ScriptRunTest, PipelineFlagOverridesScriptDirective) {
  // The manager.pipeline.* metric family exists exactly when the
  // *effective* depth is > 1, so the metrics dump observes which knob won.
  const char* text =
      "pipeline 4\n"
      "local l\n"
      "constraint ord\n"
      "panic :- l(X,Y) & X > Y\n"
      "insert l(1, 2)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.collect_metrics = true;
  auto from_directive = RunScript(*script, options);
  ASSERT_TRUE(from_directive.ok());
  EXPECT_NE(from_directive->metrics_json.find("manager.pipeline.admitted"),
            std::string::npos);
  // An explicit --pipeline-depth=1 must win over the directive.
  options.pipeline.depth = 1;
  options.pipeline_from_flags = true;
  auto from_flag = RunScript(*script, options);
  ASSERT_TRUE(from_flag.ok());
  EXPECT_EQ(from_flag->metrics_json.find("manager.pipeline.admitted"),
            std::string::npos);
  EXPECT_EQ(from_directive->log_text, from_flag->log_text);
}

// ---- ApplyScriptFlag: the strict ccpi_check flag parser -----------------

/// Applies one flag expecting success, returning whether it was matched.
bool ApplyOk(std::string_view arg, ScriptOptions* options) {
  bool matched = false;
  Status st = ApplyScriptFlag(arg, options, &matched);
  EXPECT_TRUE(st.ok()) << arg << ": " << st.ToString();
  return matched;
}

/// Applies one flag expecting a usage error that names the flag.
void ExpectBadFlag(std::string_view arg, std::string_view flag_name) {
  ScriptOptions options;
  bool matched = false;
  Status st = ApplyScriptFlag(arg, &options, &matched);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << arg;
  EXPECT_NE(st.message().find(flag_name), std::string::npos)
      << "error for " << arg << " does not name the flag: " << st.message();
}

TEST(ScriptFlagTest, ValidFlagsApply) {
  ScriptOptions options;
  EXPECT_TRUE(ApplyOk("--threads=8", &options));
  EXPECT_EQ(options.parallel.threads, 8u);
  EXPECT_TRUE(ApplyOk("--remote-cache=off", &options));
  EXPECT_FALSE(options.remote_cache.enabled);
  EXPECT_TRUE(ApplyOk("--remote-cache=on", &options));
  EXPECT_TRUE(options.remote_cache.enabled);
  EXPECT_FALSE(options.plan_cache_from_flags);
  EXPECT_TRUE(ApplyOk("--plan-cache=off", &options));
  EXPECT_FALSE(options.plan_cache.enabled);
  EXPECT_TRUE(options.plan_cache_from_flags);
  EXPECT_TRUE(ApplyOk("--plan-cache=on", &options));
  EXPECT_TRUE(options.plan_cache.enabled);
  EXPECT_FALSE(options.pipeline_from_flags);
  EXPECT_TRUE(ApplyOk("--pipeline-depth=8", &options));
  EXPECT_EQ(options.pipeline.depth, 8u);
  EXPECT_TRUE(options.pipeline_from_flags);
  EXPECT_TRUE(ApplyOk("--fault-rate=0.25", &options));
  EXPECT_DOUBLE_EQ(options.faults.transient_rate, 0.25);
  EXPECT_TRUE(options.enable_faults);
  EXPECT_TRUE(ApplyOk("--fault-timeout-rate=0.5", &options));
  EXPECT_DOUBLE_EQ(options.faults.timeout_rate, 0.5);
  EXPECT_TRUE(ApplyOk("--fault-seed=42", &options));
  EXPECT_EQ(options.faults.seed, 42u);
  EXPECT_TRUE(ApplyOk("--fault-outage=10:25", &options));
  ASSERT_EQ(options.faults.outages.size(), 1u);
  EXPECT_EQ(options.faults.outages[0].begin, 10u);
  EXPECT_EQ(options.faults.outages[0].end, 25u);
  EXPECT_TRUE(ApplyOk("--fault-reject", &options));
  EXPECT_EQ(options.resilience.on_unreachable, DeferredPolicy::kReject);
  EXPECT_TRUE(ApplyOk("--stats", &options));
  EXPECT_TRUE(options.print_stats);
}

TEST(ScriptFlagTest, MalformedNumericValuesAreHardErrors) {
  // Satellite of ISSUE 4: these used to fall back silently to defaults
  // (atoi-style parsing); now each is an InvalidArgument naming the flag.
  ExpectBadFlag("--threads=abc", "--threads");
  ExpectBadFlag("--threads=-2", "--threads");
  ExpectBadFlag("--threads=", "--threads");
  ExpectBadFlag("--threads=4x", "--threads");
  ExpectBadFlag("--fault-rate=1.5", "--fault-rate");
  ExpectBadFlag("--fault-rate=-0.1", "--fault-rate");
  ExpectBadFlag("--fault-rate=nope", "--fault-rate");
  ExpectBadFlag("--fault-timeout-rate=2", "--fault-timeout-rate");
  ExpectBadFlag("--fault-seed=12p", "--fault-seed");
  ExpectBadFlag("--fault-outage=10", "--fault-outage");
  ExpectBadFlag("--fault-outage=a:b", "--fault-outage");
  ExpectBadFlag("--fault-outage=25:10", "--fault-outage");
  ExpectBadFlag("--remote-cache=bogus", "--remote-cache");
  ExpectBadFlag("--plan-cache=bogus", "--plan-cache");
  ExpectBadFlag("--plan-cache=", "--plan-cache");
  ExpectBadFlag("--plan-cache=ON", "--plan-cache");
  ExpectBadFlag("--pipeline-depth=bogus", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=0", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=-2", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=4x", "--pipeline-depth");
}

TEST(ScriptFlagTest, MalformedValueLeavesOptionsUntouched) {
  ScriptOptions options;
  bool matched = false;
  Status st = ApplyScriptFlag("--threads=abc", &options, &matched);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(options.parallel.threads, ScriptOptions{}.parallel.threads);
}

TEST(ScriptFlagTest, UnrecognizedFlagsAreNotMatched) {
  ScriptOptions options;
  EXPECT_FALSE(ApplyOk("--no-such-flag=1", &options));
  EXPECT_FALSE(ApplyOk("workload.ccpi", &options));
  // Tool-level flags are deliberately not ApplyScriptFlag's business.
  EXPECT_FALSE(ApplyOk("--export-souffle", &options));
  EXPECT_FALSE(ApplyOk("--trace-out=x.json", &options));
}

TEST(ScriptFlagTest, BudgetFlagsApply) {
  ScriptOptions options;
  EXPECT_FALSE(options.budget.armed());
  EXPECT_TRUE(ApplyOk("--deadline-ms=750", &options));
  EXPECT_EQ(options.budget.per_episode.deadline_ms, 750u);
  EXPECT_TRUE(ApplyOk("--max-fixpoint-rounds=6", &options));
  EXPECT_EQ(options.budget.per_check.max_fixpoint_rounds, 6u);
  EXPECT_TRUE(ApplyOk("--max-derived-tuples=10000", &options));
  EXPECT_EQ(options.budget.per_check.max_derived_tuples, 10000u);
  EXPECT_TRUE(ApplyOk("--deferred-queue-cap=32", &options));
  EXPECT_EQ(options.budget.deferred_queue_cap, 32u);
  EXPECT_TRUE(ApplyOk("--overflow-policy=shed-oldest", &options));
  EXPECT_EQ(options.budget.overflow, OverflowPolicy::kShedOldest);
  EXPECT_TRUE(ApplyOk("--overflow-policy=block-recheck", &options));
  EXPECT_EQ(options.budget.overflow, OverflowPolicy::kBlockRecheck);
  EXPECT_TRUE(ApplyOk("--overflow-policy=reject-update", &options));
  EXPECT_EQ(options.budget.overflow, OverflowPolicy::kRejectUpdate);
  EXPECT_TRUE(options.budget.armed());
}

TEST(ScriptFlagTest, MalformedBudgetValuesAreHardErrors) {
  ExpectBadFlag("--deadline-ms=abc", "--deadline-ms");
  ExpectBadFlag("--deadline-ms=-5", "--deadline-ms");
  ExpectBadFlag("--deadline-ms=", "--deadline-ms");
  ExpectBadFlag("--max-fixpoint-rounds=2.5", "--max-fixpoint-rounds");
  ExpectBadFlag("--max-derived-tuples=lots", "--max-derived-tuples");
  ExpectBadFlag("--deferred-queue-cap=-1", "--deferred-queue-cap");
  ExpectBadFlag("--overflow-policy=panic", "--overflow-policy");
  ExpectBadFlag("--overflow-policy=", "--overflow-policy");
  // A bad value must not half-apply.
  ScriptOptions options;
  bool matched = false;
  Status st = ApplyScriptFlag("--deadline-ms=abc", &options, &matched);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(options.budget.armed());
}

TEST(ScriptFlagTest, ValidateRejectsRateSumAboveOne) {
  ScriptOptions options;
  ASSERT_TRUE(ApplyOk("--fault-rate=0.7", &options));
  ASSERT_TRUE(ApplyOk("--fault-timeout-rate=0.4", &options));
  Status st = ValidateScriptOptions(options);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  options.faults.timeout_rate = 0.3;
  EXPECT_TRUE(ValidateScriptOptions(options).ok());
}

}  // namespace
}  // namespace ccpi
