#include <gtest/gtest.h>

#include "manager/script.h"

namespace ccpi {
namespace {

TEST(ScriptParseTest, FullWorkload) {
  auto script = ParseScript(
      "# a comment\n"
      "local reserved emp\n"
      "constraint no-overlap\n"
      "panic :- reserved(P,Lo,Hi) & order(P,Q) & Lo <= Q & Q <= Hi\n"
      "constraint sane\n"
      "panic :- reserved(P,Lo,Hi) & Hi < Lo\n"
      "fact order(widget, 700)\n"
      "insert reserved(widget, 0, 400)\n"
      "delete reserved(widget, 0, 400)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->local_preds,
            (std::set<std::string>{"reserved", "emp"}));
  ASSERT_EQ(script->constraints.size(), 2u);
  EXPECT_EQ(script->constraints[0].first, "no-overlap");
  EXPECT_EQ(script->constraints[1].first, "sane");
  EXPECT_TRUE(script->initial.Contains("order", {V("widget"), V(700)}));
  ASSERT_EQ(script->updates.size(), 2u);
  EXPECT_EQ(script->updates[0].kind, Update::Kind::kInsert);
  EXPECT_EQ(script->updates[1].kind, Update::Kind::kDelete);
}

TEST(ScriptParseTest, MultiLineRule) {
  auto script = ParseScript(
      "constraint c\n"
      "panic :- reserved(P,Lo,Hi) &\n"
      "         order(P,Q) &\n"
      "         Lo <= Q & Q <= Hi\n"
      "insert reserved(a, 1, 2)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->constraints.size(), 1u);
  EXPECT_EQ(script->constraints[0].second.rules[0].body.size(), 4u);
  EXPECT_EQ(script->updates.size(), 1u);
}

TEST(ScriptParseTest, MultipleRulesPerConstraint) {
  auto script = ParseScript(
      "constraint range\n"
      "panic :- emp(E,D,S) & salRange(D,Lo,Hi) & S < Lo\n"
      "panic :- emp(E,D,S) & salRange(D,Lo,Hi) & S > Hi\n");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->constraints[0].second.rules.size(), 2u);
}

TEST(ScriptParseTest, Errors) {
  EXPECT_FALSE(ParseScript("panic :- p(X)\n").ok());  // rule outside block
  EXPECT_FALSE(ParseScript("constraint\n").ok());     // missing name
  EXPECT_FALSE(ParseScript("fact p(X)\n").ok());      // non-ground fact
  EXPECT_FALSE(
      ParseScript("insert p(X) :- q(X)\n").ok());     // rule, not a fact
  EXPECT_FALSE(ParseScript("constraint empty\nfact p(1)\n").ok());
}

TEST(ScriptRunTest, EndToEnd) {
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "fact r(7)\n"
      "insert l(10, 20)\n"   // ok (7 outside)
      "insert l(12, 18)\n"   // ok, resolved locally (covered)
      "insert l(5, 8)\n");   // rejected: 7 in range
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->updates_applied, 2u);
  EXPECT_EQ(report->updates_rejected, 1u);
  EXPECT_NE(report->text.find("REJECT +l(5, 8)"), std::string::npos);
  EXPECT_NE(report->text.find("tier local-test"), std::string::npos);
}

/// A miniature of examples/workloads/overload.ccpi: every insert into the
/// local request relation forces a recursive tier-3 fixpoint over a remote
/// edge chain, so a one-round budget must shed it.
const char* kOverloadScript =
    "local request\n"
    "constraint no-path-to-blocked\n"
    "path(X,Y) :- edge(X,Y)\n"
    "path(X,Y) :- edge(X,Z) & path(Z,Y)\n"
    "panic :- request(U,N) & path(N,M) & blocked(M)\n"
    "fact edge(a, b)\n"
    "fact edge(b, c)\n"
    "fact edge(c, d)\n"
    "fact edge(d, e)\n"
    "fact blocked(z)\n"
    "insert request(u1, a)\n"
    "insert request(u2, b)\n";

TEST(ScriptRunTest, BudgetShedsAreReportedDistinctlyFromDeferrals) {
  auto script = ParseScript(kOverloadScript);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.budget.per_check.max_fixpoint_rounds = 1;
  options.print_stats = true;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->budget_armed);
  EXPECT_GT(report->shed_checks, 0u);
  EXPECT_GT(report->budget_exhausted, 0u);
  EXPECT_EQ(report->deferred_dropped, 0u);
  // A shed check reads "shed:", never "deferred:" (no site was down), and
  // stays pending: the shutdown drain re-attempts it under the same budget.
  EXPECT_NE(report->text.find(" shed:no-path-to-blocked"), std::string::npos)
      << report->text;
  EXPECT_EQ(report->text.find(" deferred:"), std::string::npos);
  EXPECT_NE(report->text.find("PENDING"), std::string::npos);
  EXPECT_NE(report->summary_text.find("budget: "), std::string::npos);
}

TEST(ScriptRunTest, UnbudgetedRunNeverMentionsBudgets) {
  auto script = ParseScript(kOverloadScript);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.print_stats = true;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->budget_armed);
  EXPECT_EQ(report->shed_checks, 0u);
  EXPECT_EQ(report->updates_applied, 2u);
  EXPECT_EQ(report->text.find(" shed:"), std::string::npos);
  EXPECT_EQ(report->summary_text.find("budget: "), std::string::npos);
}

TEST(ScriptRunTest, QueueCapAloneArmsBudgetReporting) {
  // --deferred-queue-cap with no other budget still arms the report (the
  // cap can drop or refuse work, so the run must disclose its counters).
  auto script = ParseScript(kOverloadScript);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.budget.deferred_queue_cap = 4;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->budget_armed);
  EXPECT_EQ(report->shed_checks, 0u);
  EXPECT_EQ(report->updates_applied, 2u);
}

TEST(ScriptRunTest, SubsumedConstraintReported) {
  auto script = ParseScript(
      "local emp\n"
      "constraint cap-200\n"
      "panic :- emp(E,S) & S > 200\n"
      "constraint cap-500\n"
      "panic :- emp(E,S) & S > 500\n"
      "insert emp(ann, 100)\n");
  ASSERT_TRUE(script.ok());
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->text.find("cap-500 (redundant"), std::string::npos);
}

// ---- plan_cache directive and --plan-cache flag --------------------------

TEST(ScriptParseTest, PlanCacheDirective) {
  auto off = ParseScript("plan_cache off\nlocal l\n");
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(off->plan_cache.has_value());
  EXPECT_FALSE(*off->plan_cache);
  auto on = ParseScript("plan_cache on\nlocal l\n");
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(on->plan_cache.has_value());
  EXPECT_TRUE(*on->plan_cache);
  auto unset = ParseScript("local l\n");
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->plan_cache.has_value());
}

TEST(ScriptParseTest, PlanCacheDirectiveRejectsBadValue) {
  auto bad = ParseScript("local l\nplan_cache maybe\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending line, like the other directives.
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().message();
  EXPECT_NE(bad.status().message().find("plan_cache"), std::string::npos);
}

TEST(ScriptRunTest, PlanCacheFlagOverridesScriptDirective) {
  // The script turns the cache off; the summary's "plans:" diagnostics
  // line exists only while the cache is on, so it observes the effective
  // switch. An explicit --plan-cache=on flag must win over the directive.
  const char* text =
      "plan_cache off\n"
      "local l\n"
      "constraint join\n"
      "panic :- l(X,Y) & r(Y)\n"
      "insert l(1, 2)\n"
      "insert l(3, 4)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.print_stats = true;
  auto off = RunScript(*script, options);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->summary_text.find("plans:"), std::string::npos);
  options.plan_cache.enabled = true;
  options.plan_cache_from_flags = true;
  auto on = RunScript(*script, options);
  ASSERT_TRUE(on.ok());
  EXPECT_NE(on->summary_text.find("plans:"), std::string::npos);
  // Flags win, directives change behavior, but the report proper must not
  // move: the per-update log is byte-identical either way.
  EXPECT_EQ(off->log_text, on->log_text);
}

// ---- pipeline directive and --pipeline-depth flag -------------------------

TEST(ScriptParseTest, PipelineDirective) {
  auto four = ParseScript("pipeline 4\nlocal l\n");
  ASSERT_TRUE(four.ok());
  ASSERT_TRUE(four->pipeline_depth.has_value());
  EXPECT_EQ(*four->pipeline_depth, 4u);
  auto unset = ParseScript("local l\n");
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->pipeline_depth.has_value());
}

TEST(ScriptParseTest, PipelineDirectiveRejectsBadValue) {
  for (const char* text : {"local l\npipeline 0\n", "local l\npipeline abc\n",
                           "local l\npipeline\n", "local l\npipeline -3\n"}) {
    auto bad = ParseScript(text);
    EXPECT_FALSE(bad.ok()) << text;
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
        << bad.status().message();
    EXPECT_NE(bad.status().message().find("pipeline"), std::string::npos)
        << bad.status().message();
  }
}

TEST(ScriptRunTest, PipelinedRunMatchesSerialByteForByte) {
  // The whole point of the serialized commit map: the report — log and
  // summary both — is byte-identical at any pipeline depth.
  const char* text =
      "local l\n"
      "constraint ord\n"
      "panic :- l(X,Y) & X > Y\n"
      "constraint join\n"
      "panic :- l(X,Y) & r(Y)\n"
      "fact r(7)\n"
      "insert l(1, 2)\n"
      "insert l(5, 3)\n"
      "insert l(4, 7)\n"
      "insert l(2, 9)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.print_stats = true;
  auto serial = RunScript(*script, options);
  ASSERT_TRUE(serial.ok());
  options.pipeline.depth = 8;
  options.pipeline_from_flags = true;
  auto piped = RunScript(*script, options);
  ASSERT_TRUE(piped.ok());
  EXPECT_EQ(serial->text, piped->text);
}

TEST(ScriptRunTest, PipelineFlagOverridesScriptDirective) {
  // The manager.pipeline.* metric family exists exactly when the
  // *effective* depth is > 1, so the metrics dump observes which knob won.
  const char* text =
      "pipeline 4\n"
      "local l\n"
      "constraint ord\n"
      "panic :- l(X,Y) & X > Y\n"
      "insert l(1, 2)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.collect_metrics = true;
  auto from_directive = RunScript(*script, options);
  ASSERT_TRUE(from_directive.ok());
  EXPECT_NE(from_directive->metrics_json.find("manager.pipeline.admitted"),
            std::string::npos);
  // An explicit --pipeline-depth=1 must win over the directive.
  options.pipeline.depth = 1;
  options.pipeline_from_flags = true;
  auto from_flag = RunScript(*script, options);
  ASSERT_TRUE(from_flag.ok());
  EXPECT_EQ(from_flag->metrics_json.find("manager.pipeline.admitted"),
            std::string::npos);
  EXPECT_EQ(from_directive->log_text, from_flag->log_text);
}

// ---- ApplyScriptFlag: the strict ccpi_check flag parser -----------------

/// Applies one flag expecting success, returning whether it was matched.
bool ApplyOk(std::string_view arg, ScriptOptions* options) {
  bool matched = false;
  Status st = ApplyScriptFlag(arg, options, &matched);
  EXPECT_TRUE(st.ok()) << arg << ": " << st.ToString();
  return matched;
}

/// Applies one flag expecting a usage error that names the flag.
void ExpectBadFlag(std::string_view arg, std::string_view flag_name) {
  ScriptOptions options;
  bool matched = false;
  Status st = ApplyScriptFlag(arg, &options, &matched);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << arg;
  EXPECT_NE(st.message().find(flag_name), std::string::npos)
      << "error for " << arg << " does not name the flag: " << st.message();
}

TEST(ScriptFlagTest, ValidFlagsApply) {
  ScriptOptions options;
  EXPECT_TRUE(ApplyOk("--threads=8", &options));
  EXPECT_EQ(options.parallel.threads, 8u);
  EXPECT_TRUE(ApplyOk("--remote-cache=off", &options));
  EXPECT_FALSE(options.remote_cache.enabled);
  EXPECT_TRUE(ApplyOk("--remote-cache=on", &options));
  EXPECT_TRUE(options.remote_cache.enabled);
  EXPECT_FALSE(options.plan_cache_from_flags);
  EXPECT_TRUE(ApplyOk("--plan-cache=off", &options));
  EXPECT_FALSE(options.plan_cache.enabled);
  EXPECT_TRUE(options.plan_cache_from_flags);
  EXPECT_TRUE(ApplyOk("--plan-cache=on", &options));
  EXPECT_TRUE(options.plan_cache.enabled);
  EXPECT_FALSE(options.pipeline_from_flags);
  EXPECT_TRUE(ApplyOk("--pipeline-depth=8", &options));
  EXPECT_EQ(options.pipeline.depth, 8u);
  EXPECT_TRUE(options.pipeline_from_flags);
  EXPECT_TRUE(ApplyOk("--fault-rate=0.25", &options));
  EXPECT_DOUBLE_EQ(options.faults.transient_rate, 0.25);
  EXPECT_TRUE(options.enable_faults);
  EXPECT_TRUE(ApplyOk("--fault-timeout-rate=0.5", &options));
  EXPECT_DOUBLE_EQ(options.faults.timeout_rate, 0.5);
  EXPECT_TRUE(ApplyOk("--fault-seed=42", &options));
  EXPECT_EQ(options.faults.seed, 42u);
  EXPECT_TRUE(ApplyOk("--fault-outage=10:25", &options));
  ASSERT_EQ(options.faults.outages.size(), 1u);
  EXPECT_EQ(options.faults.outages[0].begin, 10u);
  EXPECT_EQ(options.faults.outages[0].end, 25u);
  EXPECT_TRUE(ApplyOk("--fault-reject", &options));
  EXPECT_EQ(options.resilience.on_unreachable, DeferredPolicy::kReject);
  EXPECT_TRUE(ApplyOk("--stats", &options));
  EXPECT_TRUE(options.print_stats);
}

TEST(ScriptFlagTest, MalformedNumericValuesAreHardErrors) {
  // Satellite of ISSUE 4: these used to fall back silently to defaults
  // (atoi-style parsing); now each is an InvalidArgument naming the flag.
  ExpectBadFlag("--threads=abc", "--threads");
  ExpectBadFlag("--threads=-2", "--threads");
  ExpectBadFlag("--threads=", "--threads");
  ExpectBadFlag("--threads=4x", "--threads");
  ExpectBadFlag("--fault-rate=1.5", "--fault-rate");
  ExpectBadFlag("--fault-rate=-0.1", "--fault-rate");
  ExpectBadFlag("--fault-rate=nope", "--fault-rate");
  ExpectBadFlag("--fault-timeout-rate=2", "--fault-timeout-rate");
  ExpectBadFlag("--fault-seed=12p", "--fault-seed");
  ExpectBadFlag("--fault-outage=10", "--fault-outage");
  ExpectBadFlag("--fault-outage=a:b", "--fault-outage");
  ExpectBadFlag("--fault-outage=25:10", "--fault-outage");
  ExpectBadFlag("--remote-cache=bogus", "--remote-cache");
  ExpectBadFlag("--plan-cache=bogus", "--plan-cache");
  ExpectBadFlag("--plan-cache=", "--plan-cache");
  ExpectBadFlag("--plan-cache=ON", "--plan-cache");
  ExpectBadFlag("--pipeline-depth=bogus", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=0", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=-2", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=", "--pipeline-depth");
  ExpectBadFlag("--pipeline-depth=4x", "--pipeline-depth");
}

TEST(ScriptFlagTest, MalformedValueLeavesOptionsUntouched) {
  ScriptOptions options;
  bool matched = false;
  Status st = ApplyScriptFlag("--threads=abc", &options, &matched);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(options.parallel.threads, ScriptOptions{}.parallel.threads);
}

TEST(ScriptFlagTest, UnrecognizedFlagsAreNotMatched) {
  ScriptOptions options;
  EXPECT_FALSE(ApplyOk("--no-such-flag=1", &options));
  EXPECT_FALSE(ApplyOk("workload.ccpi", &options));
  // Tool-level flags are deliberately not ApplyScriptFlag's business.
  EXPECT_FALSE(ApplyOk("--export-souffle", &options));
  EXPECT_FALSE(ApplyOk("--trace-out=x.json", &options));
}

TEST(ScriptFlagTest, BudgetFlagsApply) {
  ScriptOptions options;
  EXPECT_FALSE(options.budget.armed());
  EXPECT_TRUE(ApplyOk("--deadline-ms=750", &options));
  EXPECT_EQ(options.budget.per_episode.deadline_ms, 750u);
  EXPECT_TRUE(ApplyOk("--max-fixpoint-rounds=6", &options));
  EXPECT_EQ(options.budget.per_check.max_fixpoint_rounds, 6u);
  EXPECT_TRUE(ApplyOk("--max-derived-tuples=10000", &options));
  EXPECT_EQ(options.budget.per_check.max_derived_tuples, 10000u);
  EXPECT_TRUE(ApplyOk("--deferred-queue-cap=32", &options));
  EXPECT_EQ(options.budget.deferred_queue_cap, 32u);
  EXPECT_TRUE(ApplyOk("--overflow-policy=shed-oldest", &options));
  EXPECT_EQ(options.budget.overflow, OverflowPolicy::kShedOldest);
  EXPECT_TRUE(ApplyOk("--overflow-policy=block-recheck", &options));
  EXPECT_EQ(options.budget.overflow, OverflowPolicy::kBlockRecheck);
  EXPECT_TRUE(ApplyOk("--overflow-policy=reject-update", &options));
  EXPECT_EQ(options.budget.overflow, OverflowPolicy::kRejectUpdate);
  EXPECT_TRUE(options.budget.armed());
}

TEST(ScriptFlagTest, MalformedBudgetValuesAreHardErrors) {
  ExpectBadFlag("--deadline-ms=abc", "--deadline-ms");
  ExpectBadFlag("--deadline-ms=-5", "--deadline-ms");
  ExpectBadFlag("--deadline-ms=", "--deadline-ms");
  ExpectBadFlag("--max-fixpoint-rounds=2.5", "--max-fixpoint-rounds");
  ExpectBadFlag("--max-derived-tuples=lots", "--max-derived-tuples");
  ExpectBadFlag("--deferred-queue-cap=-1", "--deferred-queue-cap");
  ExpectBadFlag("--overflow-policy=panic", "--overflow-policy");
  ExpectBadFlag("--overflow-policy=", "--overflow-policy");
  // A bad value must not half-apply.
  ScriptOptions options;
  bool matched = false;
  Status st = ApplyScriptFlag("--deadline-ms=abc", &options, &matched);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(options.budget.armed());
}

TEST(ScriptFlagTest, ValidateRejectsRateSumAboveOne) {
  ScriptOptions options;
  ASSERT_TRUE(ApplyOk("--fault-rate=0.7", &options));
  ASSERT_TRUE(ApplyOk("--fault-timeout-rate=0.4", &options));
  Status st = ValidateScriptOptions(options);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  options.faults.timeout_rate = 0.3;
  EXPECT_TRUE(ValidateScriptOptions(options).ok());
}

// ---- ISSUE 10: latency models, failure domains, hedged reads ------------

TEST(ScriptParseTest, LatencyAndDomainDirectives) {
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "sites 4\n"
      "site_latency 0 fixed:250\n"
      "site_latency 1 uniform:10:50\n"
      "site_latency 2 twopoint:100:5000:0.1\n"
      "domain rack0 0 1\n"
      "domain rack1 2 3\n"
      "domain_outage rack0 4 10\n"
      "hedge_after 3\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  const TopologyConfig& t = script->topology;
  ASSERT_EQ(t.site_latency.size(), 3u);
  EXPECT_EQ(t.site_latency.at(0).model, LatencyModel::kFixed);
  EXPECT_EQ(t.site_latency.at(0).fixed_us, 250u);
  EXPECT_EQ(t.site_latency.at(1).model, LatencyModel::kUniform);
  EXPECT_EQ(t.site_latency.at(1).lo_us, 10u);
  EXPECT_EQ(t.site_latency.at(1).hi_us, 50u);
  EXPECT_EQ(t.site_latency.at(2).model, LatencyModel::kTwoPoint);
  EXPECT_DOUBLE_EQ(t.site_latency.at(2).slow_share, 0.1);
  ASSERT_EQ(t.domains.size(), 2u);
  EXPECT_EQ(t.domains[0].name, "rack0");
  EXPECT_EQ(t.domains[0].members, (std::vector<size_t>{0, 1}));
  // "domain_outage rack0 4 10" darkens the half-open window [4, 10) on
  // each member's trip counter — the same convention as --fault-outage.
  ASSERT_EQ(t.domains[0].outages.size(), 1u);
  EXPECT_EQ(t.domains[0].outages[0].begin, 4u);
  EXPECT_EQ(t.domains[0].outages[0].end, 10u);
  EXPECT_TRUE(t.domains[1].outages.empty());
  ASSERT_TRUE(script->hedge_after.has_value());
  EXPECT_EQ(*script->hedge_after, 3u);
}

/// Expects ParseScript to fail with a message containing `needle`.
void ExpectParseError(std::string_view text, std::string_view needle) {
  auto script = ParseScript(text);
  ASSERT_FALSE(script.ok()) << "parsed: " << text;
  EXPECT_NE(script.status().message().find(needle), std::string::npos)
      << "error for \"" << text
      << "\" missing \"" << needle << "\": " << script.status().message();
}

TEST(ScriptParseTest, LatencyAndDomainDirectivesRejectBadValues) {
  ExpectParseError("site_latency 0 gaussian:5\n", "site_latency");
  ExpectParseError("site_latency 0 fixed:0\n", "site_latency");
  ExpectParseError("site_latency 0 uniform:50:10\n", "site_latency");
  ExpectParseError("site_latency 0 twopoint:10:50:1.5\n", "site_latency");
  ExpectParseError("site_latency x fixed:10\n", "site_latency");
  ExpectParseError("domain rack0\n", "domain");
  ExpectParseError("domain rack0 0 x\n", "domain");
  ExpectParseError("sites 2\ndomain rack0 0\ndomain_outage rack0 9 4\n",
                   "domain_outage");
  ExpectParseError("domain_outage ghost 4 10\n", "undefined domain");
  // Cross-directive validation at end of parse: duplicate names,
  // overlapping membership, out-of-range sites.
  ExpectParseError("sites 4\ndomain rack0 0\ndomain rack0 1\n",
                   "declared twice");
  ExpectParseError("sites 4\ndomain rack0 0 1\ndomain rack1 1 2\n",
                   "member of two failure domains");
  ExpectParseError("sites 2\ndomain rack0 0 5\n", "claims site 5");
  ExpectParseError("sites 2\nsite_latency 7 fixed:10\n", "names site 7");
  ExpectParseError("hedge_after x\n", "hedge_after");
}

TEST(ScriptFlagTest, LatencyAndDomainFlagsApply) {
  ScriptOptions options;
  EXPECT_FALSE(options.site_latency_from_flags);
  EXPECT_TRUE(ApplyOk("--site-latency=1:twopoint:100:5000:0.1", &options));
  EXPECT_TRUE(options.site_latency_from_flags);
  ASSERT_EQ(options.topology.site_latency.count(1), 1u);
  EXPECT_EQ(options.topology.site_latency.at(1).model, LatencyModel::kTwoPoint);
  EXPECT_EQ(options.topology.site_latency.at(1).lo_us, 100u);
  EXPECT_EQ(options.topology.site_latency.at(1).hi_us, 5000u);
  EXPECT_FALSE(options.hedge_from_flags);
  EXPECT_TRUE(ApplyOk("--hedge-after=3", &options));
  EXPECT_EQ(options.remote_cache.hedge_after, 3u);
  EXPECT_TRUE(options.hedge_from_flags);
  EXPECT_FALSE(options.domains_from_flags);
  EXPECT_TRUE(ApplyOk("--domains=rack0:0+1,rack1:2", &options));
  EXPECT_TRUE(options.domains_from_flags);
  ASSERT_EQ(options.topology.domains.size(), 2u);
  EXPECT_EQ(options.topology.domains[0].name, "rack0");
  EXPECT_EQ(options.topology.domains[0].members, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(options.topology.domains[1].members, (std::vector<size_t>{2}));
  EXPECT_TRUE(ApplyOk("--domain-outage=rack0:4:10", &options));
  ASSERT_EQ(options.domain_outages.count("rack0"), 1u);
  ASSERT_EQ(options.domain_outages.at("rack0").size(), 1u);
  EXPECT_EQ(options.domain_outages.at("rack0")[0].begin, 4u);
  EXPECT_EQ(options.domain_outages.at("rack0")[0].end, 10u);
}

TEST(ScriptFlagTest, MalformedLatencyAndDomainValuesAreHardErrors) {
  ExpectBadFlag("--site-latency=1", "--site-latency");
  ExpectBadFlag("--site-latency=1:gaussian:5", "--site-latency");
  ExpectBadFlag("--site-latency=1:fixed:0", "--site-latency");
  ExpectBadFlag("--site-latency=1:uniform:50:10", "--site-latency");
  ExpectBadFlag("--site-latency=1:twopoint:10:50:2", "--site-latency");
  ExpectBadFlag("--site-latency=x:fixed:10", "--site-latency");
  ExpectBadFlag("--hedge-after=abc", "--hedge-after");
  ExpectBadFlag("--hedge-after=", "--hedge-after");
  ExpectBadFlag("--hedge-after=-1", "--hedge-after");
  ExpectBadFlag("--domains=", "--domains");
  ExpectBadFlag("--domains=rack0", "--domains");
  ExpectBadFlag("--domains=rack0:", "--domains");
  ExpectBadFlag("--domains=rack0:a+b", "--domains");
  ExpectBadFlag("--domains=:0+1", "--domains");
  ExpectBadFlag("--domain-outage=rack0", "--domain-outage");
  ExpectBadFlag("--domain-outage=rack0:9:4", "--domain-outage");
  ExpectBadFlag("--domain-outage=rack0:a:b", "--domain-outage");
}

TEST(ScriptFlagTest, ValidateRejectsInconsistentDomainAndLatencyFlags) {
  {
    // --site-latency must name a site < --sites.
    ScriptOptions options;
    ASSERT_TRUE(ApplyOk("--sites=2", &options));
    ASSERT_TRUE(ApplyOk("--site-latency=5:fixed:10", &options));
    EXPECT_EQ(ValidateScriptOptions(options).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // --domains membership must not overlap.
    ScriptOptions options;
    ASSERT_TRUE(ApplyOk("--domains=rack0:0+1,rack1:1+2", &options));
    EXPECT_EQ(ValidateScriptOptions(options).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Duplicate domain names.
    ScriptOptions options;
    ASSERT_TRUE(ApplyOk("--domains=rack0:0,rack0:1", &options));
    EXPECT_EQ(ValidateScriptOptions(options).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Domain members must be < --sites when --sites was given.
    ScriptOptions options;
    ASSERT_TRUE(ApplyOk("--sites=2", &options));
    ASSERT_TRUE(ApplyOk("--domains=rack0:0+7", &options));
    EXPECT_EQ(ValidateScriptOptions(options).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // --domain-outage must name a --domains domain when --domains was
    // given (otherwise it resolves against the script's domains at run
    // time).
    ScriptOptions options;
    ASSERT_TRUE(ApplyOk("--domains=rack0:0", &options));
    ASSERT_TRUE(ApplyOk("--domain-outage=ghost:4:10", &options));
    EXPECT_EQ(ValidateScriptOptions(options).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // All of the above together, well-formed, validates clean.
    ScriptOptions options;
    ASSERT_TRUE(ApplyOk("--sites=4", &options));
    ASSERT_TRUE(ApplyOk("--site-latency=1:uniform:10:50", &options));
    ASSERT_TRUE(ApplyOk("--domains=rack0:0+1,rack1:2+3", &options));
    ASSERT_TRUE(ApplyOk("--domain-outage=rack1:4:10", &options));
    ASSERT_TRUE(ApplyOk("--hedge-after=3", &options));
    EXPECT_TRUE(ValidateScriptOptions(options).ok());
  }
}

TEST(ScriptRunTest, HedgeFlagOverridesScriptDirective) {
  // The script pins hedge_after 7; the flag says 0 (off). Flags win: the
  // run must report zero hedging and print no hedge stats line.
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "hedge_after 7\n"
      "fact r(7)\n"
      "insert l(10, 20)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_TRUE(script->hedge_after.has_value());
  ScriptOptions options;
  options.print_stats = true;
  options.remote_cache.hedge_after = 0;
  options.hedge_from_flags = true;
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->hedges_issued, 0u);
  EXPECT_EQ(report->summary_text.find("hedge:"), std::string::npos);
  // Without the flag the directive takes effect: the stats block now
  // carries the hedge accounting line (all zeros on this tiny workload —
  // arming alone must not fabricate hedges).
  ScriptOptions directive_only;
  directive_only.print_stats = true;
  auto armed = RunScript(*script, directive_only);
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  EXPECT_NE(armed->summary_text.find("hedge: 0 issued"), std::string::npos);
}

TEST(ScriptRunTest, DomainOutageFlagAttachesToScriptDomains) {
  // --domain-outage without --domains resolves against the script's own
  // `domain` directives; naming a domain the script does not define is a
  // run-time InvalidArgument, not a crash.
  auto script = ParseScript(
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "sites 2\n"
      "site 0 r\n"
      "domain rackA 0 1\n"
      "fact r(7)\n"
      "insert l(10, 20)\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.domain_outages["ghost"].push_back(OutageWindow{0, 4});
  auto report = RunScript(*script, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().message().find("ghost"), std::string::npos);
  // Named correctly it applies: the whole run happens inside the window,
  // so the remote check defers instead of resolving.
  ScriptOptions dark;
  dark.domain_outages["rackA"].push_back(OutageWindow{0, 100});
  auto deferred = RunScript(*script, dark);
  ASSERT_TRUE(deferred.ok()) << deferred.status().ToString();
  EXPECT_EQ(deferred->updates_deferred, 1u);
}

}  // namespace
}  // namespace ccpi
