#include <gtest/gtest.h>

#include <set>

#include "core/cqc_form.h"
#include "core/icq.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "datalog/parser.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Rule MustRule(const char* text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(IcqDetectionTest, PaperDefinition) {
  // Example 6.1: forbidden intervals is an ICQ.
  auto icq = IsIndependentlyConstrained(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"), "l");
  ASSERT_TRUE(icq.ok());
  EXPECT_TRUE(*icq);
  // Two remote variables compared with each other: not an ICQ.
  auto not_icq = IsIndependentlyConstrained(
      MustRule("panic :- l(X) & r(Z,W) & Z < W & X < Z"), "l");
  ASSERT_TRUE(not_icq.ok());
  EXPECT_FALSE(*not_icq);
  // Two remote variables each constrained only against local terms: ICQ.
  auto still_icq = IsIndependentlyConstrained(
      MustRule("panic :- l(X) & r(Z,W) & X < Z & W < X"), "l");
  ASSERT_TRUE(still_icq.ok());
  EXPECT_TRUE(*still_icq);
}

TEST(IcqAnalysisTest, ForbiddenIntervalsBranch) {
  auto branches = AnalyzeForbiddenIntervals(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"), "l");
  ASSERT_TRUE(branches.ok()) << branches.status().ToString();
  ASSERT_EQ(branches->size(), 1u);
  const IcqBranch& b = (*branches)[0];
  ASSERT_TRUE(b.remote_var.has_value());
  EXPECT_EQ(*b.remote_var, "Z");
  ASSERT_EQ(b.lowers.size(), 1u);
  EXPECT_TRUE(b.lowers[0].closed);
  ASSERT_EQ(b.uppers.size(), 1u);
  EXPECT_TRUE(b.uppers[0].closed);
  EXPECT_TRUE(b.key_vars.empty());

  // Example 5.3 intervals.
  auto i36 = ForbiddenInterval(b, {V(3), V(6)});
  ASSERT_TRUE(i36.has_value());
  EXPECT_EQ(i36->ToString(), "[3, 6]");
}

TEST(IcqAnalysisTest, NeSplitsIntoBranches) {
  auto branches = AnalyzeForbiddenIntervals(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & Z <> X"), "l");
  ASSERT_TRUE(branches.ok());
  // Z < X branch dies against X <= Z? No — branches are kept; the Z<X one
  // yields empty intervals at evaluation time for any tuple. Both survive
  // syntactically.
  EXPECT_EQ(branches->size(), 2u);
}

TEST(IcqAnalysisTest, TwoRemoteVarsUnsupported) {
  auto branches = AnalyzeForbiddenIntervals(
      MustRule("panic :- l(X) & r(Z,W) & X < Z & W < X"), "l");
  ASSERT_FALSE(branches.ok());
  EXPECT_EQ(branches.status().code(), StatusCode::kUnsupported);
}

TEST(IcqAnalysisTest, OpennessResolution) {
  // Strict and weak bounds on the same variable: the strict one wins ties.
  auto branches = AnalyzeForbiddenIntervals(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & X < Z & Z < Y"), "l");
  ASSERT_TRUE(branches.ok());
  const IcqBranch& b = (*branches)[0];
  auto interval = ForbiddenInterval(b, {V(1), V(5)});
  ASSERT_TRUE(interval.has_value());
  EXPECT_EQ(interval->ToString(), "(1, 5)");
}

TEST(IcqCompilerTest, Fig61EndToEnd) {
  // The paper's running example, evaluated the paper's way (recursive
  // datalog over L).
  auto comp = CompileIcq(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"), "l");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(3), V(6)}).ok());
  ASSERT_TRUE(db.Insert("l", {V(5), V(10)}).ok());

  auto covered = IcqLocalTestOnInsert(*comp, db, {V(4), V(8)});
  ASSERT_TRUE(covered.ok()) << covered.status().ToString();
  EXPECT_EQ(*covered, Outcome::kHolds);

  auto uncovered = IcqLocalTestOnInsert(*comp, db, {V(4), V(12)});
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(*uncovered, Outcome::kUnknown);

  // Gap case: {(3,6),(8,10)} does not cover (4,9).
  Database gap;
  ASSERT_TRUE(gap.Insert("l", {V(3), V(6)}).ok());
  ASSERT_TRUE(gap.Insert("l", {V(8), V(10)}).ok());
  auto gapped = IcqLocalTestOnInsert(*comp, gap, {V(4), V(9)});
  ASSERT_TRUE(gapped.ok());
  EXPECT_EQ(*gapped, Outcome::kUnknown);
}

TEST(IcqCompilerTest, ChainOfManyIntervalsNeedsRecursion) {
  // Covering [0,100] requires merging a chain of 50 overlapping intervals —
  // exactly why Theorem 6.1 needs recursive datalog (no RA expression
  // works: the paper's k-tuple argument).
  auto comp = CompileIcq(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"), "l");
  ASSERT_TRUE(comp.ok());
  Database db;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert("l", {V(i * 2), V(i * 2 + 3)}).ok());
  }
  auto covered = IcqLocalTestOnInsert(*comp, db, {V(0), V(100)});
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
  auto too_far = IcqLocalTestOnInsert(*comp, db, {V(0), V(102)});
  ASSERT_TRUE(too_far.ok());
  EXPECT_EQ(*too_far, Outcome::kUnknown);
}

TEST(IcqCompilerTest, RaysAndUnboundedIntervals) {
  // Only a lower bound: forbidden rays [X, +inf).
  auto comp = CompileIcq(MustRule("panic :- l(X) & r(Z) & X <= Z"), "l");
  ASSERT_TRUE(comp.ok());
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(5)}).ok());
  // Inserting 7 forbids [7,inf) which is inside [5,inf).
  auto covered = IcqLocalTestOnInsert(*comp, db, {V(7)});
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
  // Inserting 3 extends the ray leftward.
  auto uncovered = IcqLocalTestOnInsert(*comp, db, {V(3)});
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(*uncovered, Outcome::kUnknown);
}

TEST(IcqCompilerTest, RayPairCoversEverything) {
  // L = {tag le 0, tag ge 10} stored as two-column tuples? Use two
  // constraints shapes: here a single constraint with both bound kinds:
  // l(X,Y): forbids [X, Y] as usual; rays come from infinite branches of
  // unbounded comparisons — covered in RaysAndUnboundedIntervals. Here we
  // exercise ray_le + ray_ge -> all through a <>-split: Z <> X forbids
  // (-inf,X) and (X,+inf).
  auto comp = CompileIcq(MustRule("panic :- l(X) & r(Z) & Z <> X"), "l");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  EXPECT_EQ(comp->branches.size(), 2u);
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(5)}).ok());
  // Inserting 5 again (same puncture) is covered.
  auto same = IcqLocalTestOnInsert(*comp, db, {V(5)});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, Outcome::kHolds);
  // Inserting 7 forbids (-inf,7) and (7,inf); the union from {5} leaves
  // the point 5... wait: the union from {5} is everything except 5, which
  // does not cover (-inf,7) (5 is inside it). Unknown.
  auto other = IcqLocalTestOnInsert(*comp, db, {V(7)});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, Outcome::kUnknown);
}

TEST(IcqCompilerTest, CrossBranchCoverageIsFound) {
  // The subtle case: t's branch-1 interval is covered only with help from
  // another tuple's branch-2 interval. Z <> Y with varying Y:
  //   s = (0, 3): punctured at 3 -> (-inf,3) U (3,inf)
  //   s' = (0, 1): punctured at 1 -> (-inf,1) U (1,inf)
  // Insert t = (0, 2): forbids (-inf,2) U (2,inf). (-inf,2) is NOT inside
  // (-inf,1), but (-inf,2) IS inside... hmm: union of all four rays covers
  // everything (1 is covered by (-inf,3), 3 by (1,inf)): so ALL of t's
  // region is covered only by mixing s and s' branches.
  auto comp = CompileIcq(MustRule("panic :- l(X,Y) & r(Z) & Z <> Y"), "l");
  ASSERT_TRUE(comp.ok());
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(0), V(3)}).ok());
  ASSERT_TRUE(db.Insert("l", {V(0), V(1)}).ok());
  auto covered = IcqLocalTestOnInsert(*comp, db, {V(0), V(2)});
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
  // With only one puncture the gap at its point remains.
  Database one;
  ASSERT_TRUE(one.Insert("l", {V(0), V(3)}).ok());
  auto gap = IcqLocalTestOnInsert(*comp, one, {V(0), V(2)});
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(*gap, Outcome::kUnknown);
}

TEST(IcqCompilerTest, KeyedJoinVariables) {
  // The remote subgoal joins a local variable: intervals only combine for
  // matching keys.
  auto comp = CompileIcq(
      MustRule("panic :- l(K,X,Y) & r(K,Z) & X <= Z & Z <= Y"), "l");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  Database db;
  ASSERT_TRUE(db.Insert("l", {V("a"), V(0), V(10)}).ok());
  ASSERT_TRUE(db.Insert("l", {V("b"), V(20), V(30)}).ok());
  // Same key, nested interval: covered.
  auto same_key = IcqLocalTestOnInsert(*comp, db, {V("a"), V(2), V(8)});
  ASSERT_TRUE(same_key.ok());
  EXPECT_EQ(*same_key, Outcome::kHolds);
  // Different key, same numeric interval: NOT covered.
  auto other_key = IcqLocalTestOnInsert(*comp, db, {V("b"), V(2), V(8)});
  ASSERT_TRUE(other_key.ok());
  EXPECT_EQ(*other_key, Outcome::kUnknown);
}

TEST(IcqCompilerTest, LocalFilters) {
  // X < Y is a filter on the local tuple itself.
  auto comp = CompileIcq(
      MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & X < Y"), "l");
  ASSERT_TRUE(comp.ok());
  Database db;
  // (8,2) fails the filter: contributes no interval.
  ASSERT_TRUE(db.Insert("l", {V(8), V(2)}).ok());
  auto uncovered = IcqLocalTestOnInsert(*comp, db, {V(3), V(5)});
  ASSERT_TRUE(uncovered.ok());
  EXPECT_EQ(*uncovered, Outcome::kUnknown);
  // A tuple failing the filter is itself harmless to insert.
  auto harmless = IcqLocalTestOnInsert(*comp, db, {V(9), V(1)});
  ASSERT_TRUE(harmless.ok());
  EXPECT_EQ(*harmless, Outcome::kHolds);
}

TEST(IcqCompilerTest, EqualityEliminatedBySubstitution) {
  auto comp = CompileIcq(
      MustRule("panic :- l(X,Y) & r(Z) & Z = X"), "l");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  // Z = X: forbidden interval is the single point [X, X].
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(5), V(0)}).ok());
  auto same = IcqLocalTestOnInsert(*comp, db, {V(5), V(9)});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, Outcome::kHolds);
  auto other = IcqLocalTestOnInsert(*comp, db, {V(6), V(9)});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, Outcome::kUnknown);
}

TEST(IcqCompilerTest, EightIntervalPredicatesMaterialize) {
  // "there may be as many as eight different predicates corresponding to
  // interval in Fig 6.1": with strict and weak bounds mixed plus a
  // <>-split, the compiled program derives bounded intervals of all four
  // end-kind combinations and rays of both closednesses.
  auto comp = CompileIcq(
      MustRule("panic :- l(A,B,C,D) & r(Z) & A <= Z & B < Z & Z <= C & "
               "Z < D & Z <> A"),
      "l");
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  std::set<std::string> heads;
  for (const Rule& r : comp->interval_program.rules) {
    heads.insert(r.head.pred);
  }
  // All four bounded kinds appear as merge-rule heads at least.
  for (const char* kind :
       {"fi_int_cc", "fi_int_co", "fi_int_oc", "fi_int_oo", "fi_ray_gec",
        "fi_ray_geo", "fi_ray_lec", "fi_ray_leo", "fi_all"}) {
    EXPECT_EQ(heads.count(kind), 1u) << kind;
  }

  // And concretely: mixed-openness bounds derive the right intervals.
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(0), V(2), V(10), V(20)}).ok());
  // Forbidden: max(0 closed, 2 open) = (2, min(10 closed, 20 open)] = 10],
  // split by Z <> 0 (no effect inside (2,10]). Covered insert:
  auto covered =
      IcqLocalTestOnInsert(*comp, db, {V(3), V(3), V(9), V(20)});
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, Outcome::kHolds);
  // The open left end at 2 is honored: t = (0,1,9,20) forbids (1,9],
  // which reaches below s's (2,10] — not covered.
  auto boundary =
      IcqLocalTestOnInsert(*comp, db, {V(0), V(1), V(9), V(20)});
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(*boundary, Outcome::kUnknown);
}

/// The three implementations of the complete local test — the Fig 6.1
/// recursive datalog program, the direct IntervalSet computation, and the
/// general Theorem 5.2 reduction containment — agree on random instances.
TEST(IcqAgreementSweep, DatalogDirectAndTheorem52Agree) {
  Rng rng(314159);
  Rule rule = MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z < Y");
  auto comp = CompileIcq(rule, "l");
  ASSERT_TRUE(comp.ok());
  auto cqc = MakeCqc(rule, "l");
  ASSERT_TRUE(cqc.ok());

  for (int trial = 0; trial < 50; ++trial) {
    Database db;
    Relation local(2);
    size_t n = rng.Below(5);
    for (size_t i = 0; i < n; ++i) {
      int64_t lo = rng.Range(0, 10);
      Tuple s = {V(lo), V(lo + rng.Range(0, 5))};
      local.Insert(s);
      ASSERT_TRUE(db.Insert("l", s).ok());
    }
    int64_t lo = rng.Range(0, 10);
    Tuple t = {V(lo), V(lo + rng.Range(0, 6))};

    auto datalog = IcqLocalTestOnInsert(*comp, db, t);
    auto direct = IcqDirectTestOnInsert(*comp, local, t);
    auto thm52 = CompleteLocalTestOnInsert(*cqc, t, local);
    ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(thm52.ok());
    EXPECT_EQ(*datalog, *direct) << "t=" << TupleToString(t) << "\nL:\n"
                                 << local.ToString("l");
    EXPECT_EQ(*datalog, thm52->outcome) << "t=" << TupleToString(t)
                                        << "\nL:\n"
                                        << local.ToString("l");
  }
}

TEST(IcqAgreementSweep, WithNeSplitsAgainstTheorem52) {
  Rng rng(2718);
  Rule rule = MustRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & Z <> X");
  auto comp = CompileIcq(rule, "l");
  ASSERT_TRUE(comp.ok());
  auto cqc = MakeCqc(rule, "l");
  ASSERT_TRUE(cqc.ok());
  for (int trial = 0; trial < 40; ++trial) {
    Database db;
    Relation local(2);
    size_t n = rng.Below(4);
    for (size_t i = 0; i < n; ++i) {
      int64_t lo = rng.Range(0, 8);
      Tuple s = {V(lo), V(lo + rng.Range(0, 4))};
      local.Insert(s);
      ASSERT_TRUE(db.Insert("l", s).ok());
    }
    int64_t lo = rng.Range(0, 8);
    Tuple t = {V(lo), V(lo + rng.Range(0, 4))};
    auto datalog = IcqLocalTestOnInsert(*comp, db, t);
    auto direct = IcqDirectTestOnInsert(*comp, local, t);
    auto thm52 = CompleteLocalTestOnInsert(*cqc, t, local);
    ASSERT_TRUE(datalog.ok());
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(thm52.ok());
    EXPECT_EQ(*datalog, *direct) << "t=" << TupleToString(t);
    EXPECT_EQ(*direct, thm52->outcome)
        << "t=" << TupleToString(t) << "\nL:\n" << local.ToString("l");
  }
}

}  // namespace
}  // namespace ccpi
