#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "updates/rewrite.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

bool MustViolated(const Program& c, const Database& db) {
  auto v = IsViolated(c, db);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() && *v;
}

/// The defining property: C'(D) == C(D after the whole batch).
void CheckBatchSemantics(const Program& c, const Program& rewritten,
                         const std::string& pred,
                         const std::vector<Tuple>& tuples, bool deletion,
                         const Database& db) {
  Database after = db;
  for (const Tuple& t : tuples) {
    Update u = deletion ? Update::Delete(pred, t) : Update::Insert(pred, t);
    ASSERT_TRUE(u.ApplyTo(&after).ok());
  }
  EXPECT_EQ(MustViolated(rewritten, db), MustViolated(c, after))
      << "rewritten:\n" << rewritten.ToString() << "db:\n" << db.ToString();
}

TEST(BatchRewriteTest, InsertBatchSemantics) {
  Program c = MustParse("panic :- emp(E,D) & not dept(D)");
  std::vector<Tuple> batch = {{V("toy")}, {V("shoe")}, {V("hat")}};
  auto rewritten = RewriteAfterInsertBatch(c, "dept", batch);
  ASSERT_TRUE(rewritten.ok());
  // copy rule + one fact per tuple + original rule.
  EXPECT_EQ(rewritten->rules.size(), 5u);

  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Database db;
    const char* depts[] = {"toy", "shoe", "hat", "cs"};
    for (int j = 0; j < 4; ++j) {
      if (rng.Chance(1, 2)) {
        ASSERT_TRUE(db.Insert("emp", {V(j), V(depts[rng.Below(4)])}).ok());
      }
      if (rng.Chance(1, 3)) {
        ASSERT_TRUE(db.Insert("dept", {V(depts[rng.Below(4)])}).ok());
      }
    }
    CheckBatchSemantics(c, *rewritten, "dept", batch, false, db);
  }
}

TEST(BatchRewriteTest, DeleteBatchBothEncodings) {
  Program c = MustParse("panic :- p(X,Y) & q(Y)");
  std::vector<Tuple> batch = {{V(1), V(2)}, {V(3), V(4)}};
  Rng rng(9);
  for (DeleteEncoding enc :
       {DeleteEncoding::kComparisons, DeleteEncoding::kNegation}) {
    auto rewritten = RewriteAfterDeleteBatch(c, "p", batch, enc);
    ASSERT_TRUE(rewritten.ok());
    for (int i = 0; i < 20; ++i) {
      Database db;
      for (int j = 0; j < 6; ++j) {
        ASSERT_TRUE(
            db.Insert("p", {V(rng.Range(0, 4)), V(rng.Range(0, 4))}).ok());
        ASSERT_TRUE(db.Insert("q", {V(rng.Range(0, 4))}).ok());
      }
      CheckBatchSemantics(c, *rewritten, "p", batch, true, db);
    }
  }
}

TEST(BatchRewriteTest, ComparisonEncodingRuleCount) {
  Program c = MustParse("panic :- p(X,Y,Z) & q(X)");
  std::vector<Tuple> batch = {{V(1), V(2), V(3)}, {V(4), V(5), V(6)}};
  auto rewritten =
      RewriteAfterDeleteBatch(c, "p", batch, DeleteEncoding::kComparisons);
  ASSERT_TRUE(rewritten.ok());
  // arity^batch = 3^2 = 9 helper rules + original.
  EXPECT_EQ(rewritten->rules.size(), 10u);
  // The negated-marker form is linear: 1 rule + 2 facts + original.
  auto neg =
      RewriteAfterDeleteBatch(c, "p", batch, DeleteEncoding::kNegation);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->rules.size(), 4u);
}

TEST(BatchRewriteTest, EmptyBatchIsIdentity) {
  Program c = MustParse("panic :- p(X)");
  auto ins = RewriteAfterInsertBatch(c, "p", {});
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->ToString(), c.ToString());
  auto del = RewriteAfterDeleteBatch(c, "p", {},
                                     DeleteEncoding::kComparisons);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->ToString(), c.ToString());
}

TEST(BatchRewriteTest, MixedArityRejected) {
  Program c = MustParse("panic :- p(X,Y)");
  auto bad = RewriteAfterInsertBatch(c, "p", {{V(1), V(2)}, {V(1)}});
  EXPECT_FALSE(bad.ok());
}

TEST(BatchRewriteTest, BatchEqualsSequentialSingles) {
  // Rewriting for a batch must equal composing single-tuple rewrites.
  Program c = MustParse("panic :- p(X,Y) & q(Y,X)");
  std::vector<Tuple> batch = {{V(1), V(2)}, {V(2), V(1)}};
  auto batched = RewriteAfterInsertBatch(c, "p", batch);
  ASSERT_TRUE(batched.ok());
  auto step1 = RewriteAfterInsert(c, Update::Insert("p", batch[0]));
  ASSERT_TRUE(step1.ok());
  auto step2 = RewriteAfterInsert(*step1, Update::Insert("p", batch[1]));
  ASSERT_TRUE(step2.ok());
  Rng rng(5);
  for (int i = 0; i < 15; ++i) {
    Database db;
    for (int j = 0; j < 5; ++j) {
      ASSERT_TRUE(
          db.Insert(rng.Chance(1, 2) ? "p" : "q",
                    {V(rng.Range(0, 3)), V(rng.Range(0, 3))})
              .ok());
    }
    EXPECT_EQ(MustViolated(*batched, db), MustViolated(*step2, db));
  }
}

}  // namespace
}  // namespace ccpi
