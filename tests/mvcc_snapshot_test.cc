// MVCC snapshot semantics of the copy-on-write Database: a copy is an
// immutable snapshot (O(#predicates) to take, no tuples copied), mutations
// of either handle never leak into the other, and the content-version
// stamps name relation contents across handles — equal versions imply
// equal contents. These are the invariants the pipelined episode scheduler
// leans on when it runs speculative check phases against admission
// snapshots while commits mutate the live database.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "relational/database.h"

namespace ccpi {
namespace {

TEST(MvccSnapshotTest, CopyIsIsolatedFromLaterWrites) {
  Database live;
  ASSERT_TRUE(live.Insert("p", {V(1), V(2)}).ok());
  ASSERT_TRUE(live.Insert("q", {V("a")}).ok());

  Database snap = live;  // the snapshot: shares every relation
  ASSERT_TRUE(live.Insert("p", {V(3), V(4)}).ok());
  ASSERT_TRUE(live.Erase("q", {V("a")}).ok());
  ASSERT_TRUE(live.Insert("r", {V(9)}).ok());

  // The snapshot still sees exactly the admission-time state.
  EXPECT_TRUE(snap.Contains("p", {V(1), V(2)}));
  EXPECT_FALSE(snap.Contains("p", {V(3), V(4)}));
  EXPECT_TRUE(snap.Contains("q", {V("a")}));
  EXPECT_FALSE(snap.Has("r"));
  // The live side sees all three writes.
  EXPECT_TRUE(live.Contains("p", {V(3), V(4)}));
  EXPECT_FALSE(live.Contains("q", {V("a")}));
  EXPECT_TRUE(live.Contains("r", {V(9)}));
}

TEST(MvccSnapshotTest, SnapshotWritesDoNotLeakIntoTheOriginal) {
  // COW cuts both ways: a scratch copy can be mutated freely (the
  // manager's tentative-apply scratch databases do this) without the
  // original observing anything.
  Database live;
  ASSERT_TRUE(live.Insert("p", {V(1)}).ok());
  Database scratch = live;
  ASSERT_TRUE(scratch.Insert("p", {V(2)}).ok());
  ASSERT_TRUE(scratch.Erase("p", {V(1)}).ok());
  EXPECT_TRUE(live.Contains("p", {V(1)}));
  EXPECT_FALSE(live.Contains("p", {V(2)}));
  EXPECT_EQ(live.TotalTuples(), 1u);
  EXPECT_EQ(scratch.TotalTuples(), 1u);
}

TEST(MvccSnapshotTest, SnapshotPinsContentVersions) {
  Database live;
  ASSERT_TRUE(live.Insert("p", {V(1)}).ok());
  uint64_t v_at_copy = live.Get("p", 1).version();
  Database snap = live;

  // An untouched predicate keeps sharing the same object (same address,
  // same version) — the copy really is O(#predicates).
  EXPECT_EQ(&snap.Get("p", 1), &live.Get("p", 1));

  ASSERT_TRUE(live.Insert("p", {V(2)}).ok());
  // The mutation cloned: the snapshot keeps the old object and version,
  // the live side moved to a new version.
  EXPECT_EQ(snap.Get("p", 1).version(), v_at_copy);
  EXPECT_NE(live.Get("p", 1).version(), v_at_copy);
  EXPECT_NE(&snap.Get("p", 1), &live.Get("p", 1));
}

TEST(MvccSnapshotTest, GetMutableClonesSharedRelations) {
  Database live;
  ASSERT_TRUE(live.Insert("p", {V(1)}).ok());
  Database snap = live;
  Relation* mut = live.GetMutable("p", 1);
  ASSERT_NE(mut, nullptr);
  // The mutable slot was cloned out of the shared state up front: even
  // before any write, the handles no longer alias.
  EXPECT_NE(mut, &snap.Get("p", 1));
  EXPECT_TRUE(snap.Contains("p", {V(1)}));
}

TEST(MvccSnapshotTest, ChainedSnapshotsEachPinTheirOwnState) {
  Database live;
  std::vector<Database> snaps;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(live.Insert("p", {V(i)}).ok());
    snaps.push_back(live);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snaps[i].Get("p", 1).size(), static_cast<size_t>(i + 1))
        << "snapshot " << i;
  }
}

TEST(MvccSnapshotTest, ConcurrentSnapshotReadsDuringLiveWrites) {
  // The scheduler's exact access pattern: reader threads scan their own
  // snapshot handles while the committing thread keeps writing the live
  // database. Run under TSan this doubles as a race check.
  Database live;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(live.Insert("p", {V(i), V(i + 1)}).ok());
  }
  Database snap = live;
  const size_t expected = snap.TotalTuples();
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&snap, expected]() {
      for (int round = 0; round < 50; ++round) {
        EXPECT_EQ(snap.TotalTuples(), expected);
        EXPECT_TRUE(snap.Contains("p", {V(0), V(1)}));
        EXPECT_FALSE(snap.Contains("p", {V(-1), V(0)}));
      }
    });
  }
  for (int i = 64; i < 256; ++i) {
    ASSERT_TRUE(live.Insert("p", {V(i), V(i + 1)}).ok());
    ASSERT_TRUE(live.Erase("p", {V(i - 64), V(i - 63)}).ok());
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(snap.TotalTuples(), expected);
  EXPECT_EQ(live.TotalTuples(), expected);
}

}  // namespace
}  // namespace ccpi
