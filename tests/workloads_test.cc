// Runs every sample workload shipped in examples/workloads through the
// script engine and checks the headline outcomes, so the CLI samples can
// never rot.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "manager/script.h"

namespace ccpi {
namespace {

std::string ReadWorkload(const std::string& name) {
  std::ifstream in(std::string(CCPI_WORKLOAD_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing workload " << name;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(WorkloadsTest, Inventory) {
  auto script = ParseScript(ReadWorkload("inventory.ccpi"));
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->updates_applied, 6u);
  EXPECT_EQ(report->updates_rejected, 2u);
  EXPECT_NE(report->text.find("tier local-test"), std::string::npos);
}

TEST(WorkloadsTest, Salary) {
  auto script = ParseScript(ReadWorkload("salary.ccpi"));
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->text.find("cap-500 (redundant"), std::string::npos);
  EXPECT_EQ(report->updates_rejected, 2u);  // carol's salary + ann's dual
}

TEST(WorkloadsTest, Sensors) {
  auto script = ParseScript(ReadWorkload("sensors.ccpi"));
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  auto report = RunScript(*script);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->updates_applied, 4u);
  EXPECT_EQ(report->updates_rejected, 2u);
  // The sub-window inserts resolved without touching readings remotely.
  EXPECT_NE(report->text.find("tier local-test"), std::string::npos);
}

}  // namespace
}  // namespace ccpi
