#include <gtest/gtest.h>

#include "containment/uniform_recursive.h"
#include "datalog/parser.h"
#include "eval/engine.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(UniformContainmentTest, IdenticalProgramsContained) {
  Program tc = MustParse(
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & e(Z,Y)\n");
  tc.goal = "t";
  auto o = UniformDatalogContained(tc, tc);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(*o, Outcome::kHolds);
}

TEST(UniformContainmentTest, LinearInNonlinearClosure) {
  // Linear transitive closure is uniformly contained in the nonlinear one
  // and vice versa (they derive the same t from any seed).
  Program linear = MustParse(
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & e(Z,Y)\n");
  linear.goal = "t";
  Program nonlinear = MustParse(
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & t(Z,Y)\n");
  nonlinear.goal = "t";
  auto fwd = UniformDatalogContained(linear, nonlinear);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(*fwd, Outcome::kHolds);
  auto bwd = UniformDatalogContained(nonlinear, linear);
  ASSERT_TRUE(bwd.ok());
  // Nonlinear's recursive rule chases t(a,b) & t(b,c) |- t(a,c), which the
  // LINEAR program cannot re-derive from t-facts alone (its recursion
  // consumes e). Uniform containment genuinely fails here even though
  // ordinary containment holds — the classic gap between the two notions.
  EXPECT_EQ(*bwd, Outcome::kUnknown);
}

TEST(UniformContainmentTest, ExtraRuleWeakens) {
  Program small = MustParse("t(X,Y) :- e(X,Y)\n");
  small.goal = "t";
  Program big = MustParse(
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- f(X,Y)\n");
  big.goal = "t";
  auto fwd = UniformDatalogContained(small, big);
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(*fwd, Outcome::kHolds);
  auto bwd = UniformDatalogContained(big, small);
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(*bwd, Outcome::kUnknown);
}

TEST(UniformContainmentTest, RejectsNegationAndArithmetic) {
  Program neg = MustParse("t(X) :- e(X) & not f(X)\n");
  neg.goal = "t";
  Program plain = MustParse("t(X) :- e(X)\n");
  plain.goal = "t";
  EXPECT_FALSE(UniformDatalogContained(neg, plain).ok());
  Program arith = MustParse("t(X) :- e(X) & X < 5\n");
  arith.goal = "t";
  EXPECT_FALSE(UniformDatalogContained(arith, plain).ok());
}

TEST(UniformContainmentTest, UniformImpliesOrdinaryOnSamples) {
  // Spot-check soundness: when the chase says kHolds, evaluate both
  // programs on concrete databases and verify actual containment.
  Program p1 = MustParse(
      "panic :- t(X,Z)\n"
      "t(X,Y) :- e(X,Y)\n");
  Program p2 = MustParse(
      "panic :- t(X,Z)\n"
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,W) & t(W,Y)\n");
  auto o = UniformDatalogContained(p1, p2);
  ASSERT_TRUE(o.ok());
  ASSERT_EQ(*o, Outcome::kHolds);
  for (int n = 0; n < 4; ++n) {
    Database db;
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(db.Insert("e", {V(i), V(i + 1)}).ok());
    }
    auto v1 = IsViolated(p1, db);
    auto v2 = IsViolated(p2, db);
    ASSERT_TRUE(v1.ok() && v2.ok());
    if (*v1) EXPECT_TRUE(*v2);
  }
}

TEST(MergeConstraintProgramsTest, HelperPredicatesRenamedApart) {
  Program a = MustParse(
      "panic :- h(X)\n"
      "h(X) :- p(X)\n");
  Program b = MustParse(
      "panic :- h(X)\n"
      "h(X) :- q(X)\n");
  Program merged = MergeConstraintPrograms({a, b});
  // Both h helpers survive under distinct names; panic stays shared.
  EXPECT_EQ(merged.rules.size(), 4u);
  std::set<std::string> idb = merged.IdbPredicates();
  EXPECT_EQ(idb.count("panic"), 1u);
  EXPECT_EQ(idb.count("h_c0"), 1u);
  EXPECT_EQ(idb.count("h_c1"), 1u);
  // Semantics: merged fires iff a or b fires.
  Database db;
  ASSERT_TRUE(db.Insert("q", {V(1)}).ok());
  auto v = IsViolated(merged, db);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Database empty;
  auto v0 = IsViolated(merged, empty);
  ASSERT_TRUE(v0.ok());
  EXPECT_FALSE(*v0);
}

TEST(SeedIdbTest, EngineSeedsDerivedRelations) {
  Program p = MustParse(
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & t(Z,Y)\n");
  p.goal = "t";
  Database seed;
  ASSERT_TRUE(seed.Insert("t", {V(1), V(2)}).ok());
  ASSERT_TRUE(seed.Insert("t", {V(2), V(3)}).ok());
  EvalOptions options;
  options.seed_idb = &seed;
  auto rel = EvaluateGoal(p, Database(), options);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->Contains({V(1), V(3)}));  // derived from the seeds
  EXPECT_EQ(rel->size(), 3u);
}

}  // namespace
}  // namespace ccpi
