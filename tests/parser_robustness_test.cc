// Robustness: the parser must return a Status (never crash, hang, or
// corrupt memory) on arbitrary input. Random byte soup, random token soup,
// and mutated valid programs all go through; whatever parses back must
// round-trip through the printer.

#include <gtest/gtest.h>

#include <string>

#include "datalog/parser.h"
#include "util/rng.h"

namespace ccpi {
namespace {

TEST(ParserRobustness, RandomBytes) {
  Rng rng(0xFEED);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t len = rng.Below(80);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Range(1, 126)));
    }
    auto p = ParseProgram(input);  // must not crash
    if (p.ok()) {
      auto again = ParseProgram(p->ToString());
      EXPECT_TRUE(again.ok()) << "printer output failed to re-parse:\n"
                              << p->ToString();
    }
  }
}

TEST(ParserRobustness, RandomTokenSoup) {
  Rng rng(0xBEEF);
  const char* tokens[] = {"panic", ":-", "emp", "(", ")", ",", "&", "X",
                          "Y",     "not", "<",  "<=", "=", "<>", "5",
                          "toy",   ".",   "\n", "boss"};
  for (int trial = 0; trial < 1000; ++trial) {
    std::string input;
    size_t len = rng.Below(30);
    for (size_t i = 0; i < len; ++i) {
      input += tokens[rng.Below(sizeof(tokens) / sizeof(tokens[0]))];
      input += " ";
    }
    auto p = ParseProgram(input);
    if (p.ok()) {
      EXPECT_TRUE(ParseProgram(p->ToString()).ok());
    }
  }
}

TEST(ParserRobustness, MutatedValidProgram) {
  const std::string base =
      "panic :- emp(E,D,S) & not dept(D) & S < 100\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n";
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.Below(3);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Range(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.Range(32, 126)));
          break;
      }
    }
    auto p = ParseProgram(mutated);
    if (p.ok()) {
      EXPECT_TRUE(ParseProgram(p->ToString()).ok());
    }
  }
}

TEST(ParserRobustness, DeepNestingAndLongRules) {
  // A very long body must parse without stack issues.
  std::string body = "p0(X)";
  for (int i = 1; i < 2000; ++i) {
    body += " & p" + std::to_string(i) + "(X)";
  }
  auto p = ParseProgram("panic :- " + body);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules[0].body.size(), 2000u);
}

TEST(ParserRobustness, HugeIntegerBoundary) {
  auto ok = ParseProgram("panic :- p(X) & X < 9223372036854775807");
  EXPECT_TRUE(ok.ok());
}

TEST(ParserRobustness, ParenGroupingAroundTerms) {
  // Parentheses around a term are pure grouping: "((x))" parses as "x".
  auto p = ParseProgram("panic :- emp((E), ((42)))");
  ASSERT_TRUE(p.ok());
  auto plain = ParseProgram("panic :- emp(E, 42)");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(p->ToString(), plain->ToString());
}

TEST(ParserRobustness, TermNestingDepthCapped) {
  // Adversarially deep paren nesting is a parse error naming the cap, not
  // a parser-stack overflow. 50k levels would smash the stack without the
  // recursion-depth guard.
  std::string input = "panic :- p(";
  input.append(50000, '(');
  input += "X";
  input.append(50000, ')');
  input += ")";
  auto p = ParseProgram(input);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("term nesting too deep"),
            std::string::npos)
      << p.status().ToString();

  // Moderate nesting (below the cap) still parses fine.
  std::string shallow = "panic :- p(";
  shallow.append(32, '(');
  shallow += "X";
  shallow.append(32, ')');
  shallow += ")";
  EXPECT_TRUE(ParseProgram(shallow).ok());
}

}  // namespace
}  // namespace ccpi
