#include <gtest/gtest.h>

#include "arith/rational.h"
#include "arith/solver.h"
#include "datalog/ast.h"
#include "util/rng.h"

namespace ccpi {
namespace arith {
namespace {

Term Var(const char* name) { return Term::Var(name); }
Term C(int64_t v) { return Term::Const(Value(v)); }
Term Sym(const char* s) { return Term::Const(Value(s)); }

Comparison Cmp(Term lhs, CmpOp op, Term rhs) {
  return Comparison{std::move(lhs), op, std::move(rhs)};
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  EXPECT_EQ(half + half, Rational(1));
  EXPECT_LT(Rational(1, 3), half);
  EXPECT_EQ(Rational::Midpoint(Rational(0), Rational(1)), half);
  EXPECT_EQ(Rational(4, 2), Rational(2));
  EXPECT_TRUE(Rational(2).IsInteger());
  EXPECT_FALSE(half.IsInteger());
  EXPECT_EQ(Rational(-3, -6), half);
  EXPECT_EQ(Rational(3, -6).ToString(), "-1/2");
}

TEST(SolverTest, EmptyIsSatisfiable) {
  EXPECT_TRUE(IsSatisfiable({}));
}

TEST(SolverTest, SimpleChain) {
  EXPECT_TRUE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLt, Var("Y")),
                             Cmp(Var("Y"), CmpOp::kLt, Var("Z"))}));
}

TEST(SolverTest, StrictCycleUnsat) {
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLt, Var("Y")),
                              Cmp(Var("Y"), CmpOp::kLt, Var("X"))}));
}

TEST(SolverTest, WeakCycleSat) {
  // X <= Y <= X forces equality, which is fine.
  EXPECT_TRUE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLe, Var("Y")),
                             Cmp(Var("Y"), CmpOp::kLe, Var("X"))}));
}

TEST(SolverTest, WeakCycleWithNeqUnsat) {
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLe, Var("Y")),
                              Cmp(Var("Y"), CmpOp::kLe, Var("X")),
                              Cmp(Var("X"), CmpOp::kNe, Var("Y"))}));
}

TEST(SolverTest, WeakCycleWithStrictInsideUnsat) {
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLe, Var("Y")),
                              Cmp(Var("Y"), CmpOp::kLt, Var("X"))}));
}

TEST(SolverTest, EqualityMergesAndPropagates) {
  // X = Y, Y < Z, Z < X is a strict cycle through the merged class.
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("X"), CmpOp::kEq, Var("Y")),
                              Cmp(Var("Y"), CmpOp::kLt, Var("Z")),
                              Cmp(Var("Z"), CmpOp::kLt, Var("X"))}));
}

TEST(SolverTest, DistinctConstantsEquatedUnsat) {
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("X"), CmpOp::kEq, C(1)),
                              Cmp(Var("X"), CmpOp::kEq, C(2))}));
}

TEST(SolverTest, ConstantOrderRespected) {
  // X <= 3 and 4 <= X contradict through the constant chain.
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLe, C(3)),
                              Cmp(C(4), CmpOp::kLe, Var("X"))}));
  EXPECT_TRUE(IsSatisfiable({Cmp(Var("X"), CmpOp::kLe, C(4)),
                             Cmp(C(3), CmpOp::kLe, Var("X"))}));
}

TEST(SolverTest, DenseBetweenAdjacentIntegers) {
  // Over the dense order 3 < X < 4 is satisfiable (by a rational).
  EXPECT_TRUE(IsSatisfiable({Cmp(C(3), CmpOp::kLt, Var("X")),
                             Cmp(Var("X"), CmpOp::kLt, C(4))}));
}

TEST(SolverTest, SymbolConstants) {
  EXPECT_TRUE(IsSatisfiable({Cmp(Var("D"), CmpOp::kNe, Sym("toy"))}));
  EXPECT_FALSE(IsSatisfiable({Cmp(Var("D"), CmpOp::kEq, Sym("toy")),
                              Cmp(Var("D"), CmpOp::kEq, Sym("shoe"))}));
  // Symbols order above integers in the Value order.
  EXPECT_FALSE(IsSatisfiable({Cmp(Sym("a"), CmpOp::kLt, C(5))}));
}

TEST(SolverTest, NeqOnSameConstantUnsat) {
  EXPECT_FALSE(IsSatisfiable({Cmp(C(7), CmpOp::kNe, C(7))}));
  EXPECT_TRUE(IsSatisfiable({Cmp(C(7), CmpOp::kNe, C(8))}));
}

// --- Implication (the Theorem 5.1 test) ----------------------------------

TEST(ImpliesTest, Example51FromThePaper) {
  // U=T & V=S  =>  U <= V  or  S <= T   simplifies to U<=V or V<=U: valid.
  Conjunction premise = {Cmp(Var("U"), CmpOp::kEq, Var("T")),
                         Cmp(Var("V"), CmpOp::kEq, Var("S"))};
  std::vector<Conjunction> disjuncts = {
      {Cmp(Var("U"), CmpOp::kLe, Var("V"))},
      {Cmp(Var("S"), CmpOp::kLe, Var("T"))}};
  EXPECT_TRUE(Implies(premise, disjuncts));
  // Either disjunct alone is NOT implied — the point of Example 5.1.
  EXPECT_FALSE(Implies(premise, {disjuncts[0]}));
  EXPECT_FALSE(Implies(premise, {disjuncts[1]}));
}

TEST(ImpliesTest, EmptyDisjunctionNeedsUnsatPremise) {
  EXPECT_FALSE(Implies({Cmp(Var("X"), CmpOp::kLe, Var("Y"))}, {}));
  EXPECT_TRUE(Implies({Cmp(Var("X"), CmpOp::kLt, Var("X"))}, {}));
}

TEST(ImpliesTest, EmptyDisjunctIsTrue) {
  // An empty conjunction disjunct is vacuously true.
  EXPECT_TRUE(Implies({Cmp(Var("X"), CmpOp::kLe, Var("Y"))},
                      {Conjunction{}}));
}

TEST(ImpliesTest, TransitivityValid) {
  Conjunction premise = {Cmp(Var("X"), CmpOp::kLt, Var("Y")),
                         Cmp(Var("Y"), CmpOp::kLt, Var("Z"))};
  EXPECT_TRUE(Implies(premise, {{Cmp(Var("X"), CmpOp::kLt, Var("Z"))}}));
  EXPECT_FALSE(Implies(premise, {{Cmp(Var("Z"), CmpOp::kLt, Var("X"))}}));
}

TEST(ImpliesTest, TotalityDisjunction) {
  // Valid with an empty premise: X <= Y or Y <= X.
  EXPECT_TRUE(Implies({}, {{Cmp(Var("X"), CmpOp::kLe, Var("Y"))},
                           {Cmp(Var("Y"), CmpOp::kLe, Var("X"))}}));
  EXPECT_FALSE(Implies({}, {{Cmp(Var("X"), CmpOp::kLt, Var("Y"))},
                            {Cmp(Var("Y"), CmpOp::kLt, Var("X"))}}));
}

TEST(ImpliesTest, IntervalCoverage) {
  // The forbidden-interval reduction of Example 5.3:
  // 4<=Z & Z<=8  =>  (3<=Z & Z<=6) or (5<=Z & Z<=10).
  Conjunction premise = {Cmp(C(4), CmpOp::kLe, Var("Z")),
                         Cmp(Var("Z"), CmpOp::kLe, C(8))};
  std::vector<Conjunction> covering = {
      {Cmp(C(3), CmpOp::kLe, Var("Z")), Cmp(Var("Z"), CmpOp::kLe, C(6))},
      {Cmp(C(5), CmpOp::kLe, Var("Z")), Cmp(Var("Z"), CmpOp::kLe, C(10))}};
  EXPECT_TRUE(Implies(premise, covering));
  // Neither interval alone covers [4,8].
  EXPECT_FALSE(Implies(premise, {covering[0]}));
  EXPECT_FALSE(Implies(premise, {covering[1]}));
  // With a gap ((3..6) and (7..10)) coverage of [4,8] fails at e.g. 6.5.
  std::vector<Conjunction> gappy = {
      {Cmp(C(3), CmpOp::kLe, Var("Z")), Cmp(Var("Z"), CmpOp::kLe, C(6))},
      {Cmp(C(7), CmpOp::kLe, Var("Z")), Cmp(Var("Z"), CmpOp::kLe, C(10))}};
  EXPECT_FALSE(Implies(premise, gappy));
}

TEST(ImpliesTest, RefutationIsSatisfiableAndRefuting) {
  Conjunction premise = {Cmp(C(4), CmpOp::kLe, Var("Z")),
                         Cmp(Var("Z"), CmpOp::kLe, C(8))};
  std::vector<Conjunction> gappy = {
      {Cmp(C(3), CmpOp::kLe, Var("Z")), Cmp(Var("Z"), CmpOp::kLe, C(6))},
      {Cmp(C(7), CmpOp::kLe, Var("Z")), Cmp(Var("Z"), CmpOp::kLe, C(10))}};
  auto refutation = FindRefutation(premise, gappy);
  ASSERT_TRUE(refutation.has_value());
  EXPECT_TRUE(IsSatisfiable(*refutation));
  // The refutation must contain the premise plus one negated atom per
  // disjunct.
  EXPECT_EQ(refutation->size(), premise.size() + gappy.size());
}

TEST(ImpliesTest, SymbolConstantsInImplication) {
  // D = toy implies D <> shoe over the total order on symbols.
  Conjunction premise = {Cmp(Var("D"), CmpOp::kEq, Sym("toy"))};
  EXPECT_TRUE(Implies(premise, {{Cmp(Var("D"), CmpOp::kNe, Sym("shoe"))}}));
  EXPECT_FALSE(Implies(premise, {{Cmp(Var("D"), CmpOp::kNe, Sym("toy"))}}));
}

TEST(ImpliesTest, ManyDisjunctsPrune) {
  // 12 gap-free unit intervals cover [0,12]; removing any one leaves a gap.
  Conjunction premise = {Cmp(C(0), CmpOp::kLe, Var("Z")),
                         Cmp(Var("Z"), CmpOp::kLe, C(12))};
  std::vector<Conjunction> tiles;
  for (int i = 0; i < 12; ++i) {
    tiles.push_back({Cmp(C(i), CmpOp::kLe, Var("Z")),
                     Cmp(Var("Z"), CmpOp::kLe, C(i + 1))});
  }
  EXPECT_TRUE(Implies(premise, tiles));
  std::vector<Conjunction> missing(tiles.begin() + 1, tiles.end());
  EXPECT_FALSE(Implies(premise, missing));  // [0,1) uncovered
}

TEST(ImpliesTest, PremiseVariablesNotInDisjuncts) {
  // Extra premise structure must not confuse the refutation search.
  Conjunction premise = {Cmp(Var("A"), CmpOp::kLt, Var("B")),
                         Cmp(Var("B"), CmpOp::kLt, Var("C")),
                         Cmp(Var("Z"), CmpOp::kGe, Var("C"))};
  EXPECT_TRUE(Implies(premise, {{Cmp(Var("A"), CmpOp::kLt, Var("Z"))}}));
  EXPECT_FALSE(Implies(premise, {{Cmp(Var("Z"), CmpOp::kLe, Var("B"))}}));
}

// --- Model construction ---------------------------------------------------

TEST(ModelTest, SimpleChainModel) {
  Conjunction conj = {Cmp(Var("X"), CmpOp::kLt, Var("Y")),
                      Cmp(Var("Y"), CmpOp::kLt, Var("Z"))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  EXPECT_LT(model->at("X"), model->at("Y"));
  EXPECT_LT(model->at("Y"), model->at("Z"));
}

TEST(ModelTest, PinnedConstants) {
  Conjunction conj = {Cmp(Var("X"), CmpOp::kEq, C(5)),
                      Cmp(Var("X"), CmpOp::kLt, Var("Y")),
                      Cmp(Var("Y"), CmpOp::kLt, C(10))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->at("X"), V(5));
  EXPECT_LT(model->at("X"), model->at("Y"));
  EXPECT_LT(model->at("Y"), V(10));
}

TEST(ModelTest, UnsatHasNoModel) {
  EXPECT_FALSE(FindModel({Cmp(Var("X"), CmpOp::kLt, Var("X"))}).has_value());
}

TEST(ModelTest, NeqAvoidance) {
  Conjunction conj = {Cmp(Var("X"), CmpOp::kNe, Var("Y")),
                      Cmp(Var("X"), CmpOp::kNe, Var("Z")),
                      Cmp(Var("Y"), CmpOp::kNe, Var("Z"))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  EXPECT_NE(model->at("X"), model->at("Y"));
  EXPECT_NE(model->at("X"), model->at("Z"));
  EXPECT_NE(model->at("Y"), model->at("Z"));
}

TEST(ModelTest, ScalingWithoutConstants) {
  // A chain of strict inequalities between equated endpoints forces
  // fractional midpoints; with no constants the model scales to integers.
  Conjunction conj = {Cmp(Var("A"), CmpOp::kLt, Var("B")),
                      Cmp(Var("B"), CmpOp::kLt, Var("C")),
                      Cmp(Var("A"), CmpOp::kNe, Var("C"))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  EXPECT_LT(model->at("A"), model->at("B"));
  EXPECT_LT(model->at("B"), model->at("C"));
}

TEST(ModelTest, SymbolEquality) {
  Conjunction conj = {Cmp(Var("D"), CmpOp::kEq, Sym("toy"))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->at("D"), V("toy"));
}

TEST(ModelTest, VariableAboveSymbol) {
  Conjunction conj = {Cmp(Sym("shoe"), CmpOp::kLt, Var("D"))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  EXPECT_LT(V("shoe"), model->at("D"));
}

TEST(ModelTest, RandomizedModelsAlwaysVerify) {
  // Any model returned must satisfy the full conjunction; sweep random
  // satisfiable-or-not instances and check the contract both ways where
  // decidable over integers.
  Rng rng(808);
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq, CmpOp::kNe,
                       CmpOp::kGt, CmpOp::kGe};
  for (int trial = 0; trial < 300; ++trial) {
    Conjunction conj;
    int n = 1 + static_cast<int>(rng.Below(5));
    for (int i = 0; i < n; ++i) {
      Term lhs = Term::Var("V" + std::to_string(rng.Below(4)));
      Term rhs = rng.Chance(1, 3)
                     ? Term::Const(Value(rng.Range(0, 2) * 10))
                     : Term::Var("V" + std::to_string(rng.Below(4)));
      conj.push_back(Comparison{lhs, ops[rng.Below(6)], rhs});
    }
    auto model = FindModel(conj);
    if (model.has_value()) {
      EXPECT_TRUE(IsSatisfiable(conj));
      for (const Comparison& c : conj) {
        Value a = c.lhs.is_const() ? c.lhs.constant() : model->at(c.lhs.var());
        Value b = c.rhs.is_const() ? c.rhs.constant() : model->at(c.rhs.var());
        EXPECT_TRUE(EvalCmp(a, c.op, b)) << c.ToString();
      }
    }
    // (UNSAT => no model is implied by the verification contract; a
    // missing model for a SAT instance is allowed only in dense-only
    // corners, which spaced constants rule out here.)
    if (IsSatisfiable(conj)) {
      EXPECT_TRUE(model.has_value());
    }
  }
}

TEST(ModelTest, VerifiedAgainstAllComparisons) {
  // Every returned model satisfies the full conjunction; spot-check a
  // denser instance.
  Conjunction conj = {
      Cmp(C(0), CmpOp::kLt, Var("A")),  Cmp(Var("A"), CmpOp::kLe, Var("B")),
      Cmp(Var("B"), CmpOp::kLt, C(10)), Cmp(Var("A"), CmpOp::kNe, Var("B")),
      Cmp(Var("C"), CmpOp::kGe, Var("B"))};
  auto model = FindModel(conj);
  ASSERT_TRUE(model.has_value());
  for (const Comparison& c : conj) {
    Value a = c.lhs.is_const() ? c.lhs.constant() : model->at(c.lhs.var());
    Value b = c.rhs.is_const() ? c.rhs.constant() : model->at(c.rhs.var());
    EXPECT_TRUE(EvalCmp(a, c.op, b)) << c.ToString();
  }
}

}  // namespace
}  // namespace arith
}  // namespace ccpi
