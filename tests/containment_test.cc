#include <gtest/gtest.h>

#include "containment/cq_containment.h"
#include "containment/cqc.h"
#include "containment/exact.h"
#include "containment/klug.h"
#include "containment/linearize.h"
#include "containment/mapping.h"
#include "containment/witness.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "util/rng.h"

namespace ccpi {
namespace {

CQ MustCQ(const char* text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return RuleToCQ(*rule);
}

TEST(MappingTest, SimpleMapping) {
  CQ from = MustCQ("panic :- r(U,V)");
  CQ to = MustCQ("panic :- r(X,Y) & r(Y,X)");
  auto mappings = EnumerateContainmentMappings(from, to);
  EXPECT_EQ(mappings.size(), 2u);
}

TEST(MappingTest, PredicateMismatchNoMapping) {
  CQ from = MustCQ("panic :- s(U,V)");
  CQ to = MustCQ("panic :- r(X,Y)");
  EXPECT_TRUE(EnumerateContainmentMappings(from, to).empty());
  EXPECT_FALSE(HasContainmentMapping(from, to));
}

TEST(MappingTest, ConsistencyAcrossSubgoals) {
  // U must map consistently in both subgoals.
  CQ from = MustCQ("panic :- r(U,V) & s(U)");
  CQ to = MustCQ("panic :- r(X,Y) & s(Z)");
  EXPECT_TRUE(EnumerateContainmentMappings(from, to).empty());
  CQ to2 = MustCQ("panic :- r(X,Y) & s(X)");
  EXPECT_EQ(EnumerateContainmentMappings(from, to2).size(), 1u);
}

TEST(MappingTest, ConstantsMustMatch) {
  CQ from = MustCQ("panic :- emp(E,sales)");
  CQ to_match = MustCQ("panic :- emp(X,sales)");
  CQ to_clash = MustCQ("panic :- emp(X,accounting)");
  EXPECT_TRUE(HasContainmentMapping(from, to_match));
  EXPECT_FALSE(HasContainmentMapping(from, to_clash));
}

TEST(MappingTest, HeadVariablesPinned) {
  CQ from = MustCQ("q(X) :- r(X,Y)");
  CQ to = MustCQ("q(A) :- r(B,A) & r(A,B)");
  // X must map to A (the head), so r(X,Y) can only map onto r(A,B).
  auto mappings = EnumerateContainmentMappings(from, to);
  ASSERT_EQ(mappings.size(), 1u);
  EXPECT_EQ(mappings[0].at("X"), Term::Var("A"));
  EXPECT_EQ(mappings[0].at("Y"), Term::Var("B"));
}

TEST(CqContainmentTest, ClassicalExamples) {
  // r(X,Y) & r(Y,Z) is contained in r(U,V) (drop a join).
  CQ q1 = MustCQ("panic :- r(X,Y) & r(Y,Z)");
  CQ q2 = MustCQ("panic :- r(U,V)");
  auto c12 = CqContained(q1, q2);
  ASSERT_TRUE(c12.ok());
  EXPECT_TRUE(*c12);
  auto c21 = CqContained(q2, q1);
  ASSERT_TRUE(c21.ok());
  EXPECT_FALSE(*c21);
}

TEST(CqContainmentTest, SelfJoinPattern) {
  // path of length 2 contained in "some edge exists", and the classic
  // square-vs-triangle noncontainment.
  CQ square = MustCQ("panic :- e(A,B) & e(B,C) & e(C,D) & e(D,A)");
  CQ triangle = MustCQ("panic :- e(X,Y) & e(Y,Z) & e(Z,X)");
  auto c = CqContained(triangle, square);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*c);  // no hom from square into triangle? (4-cycle -> 3-cycle)
  // A triangle maps into ... itself but not into the square.
  auto c2 = CqContained(square, triangle);
  ASSERT_TRUE(c2.ok());
  EXPECT_FALSE(*c2);
}

TEST(CqContainmentTest, ArithmeticRejected) {
  CQ q1 = MustCQ("panic :- r(X,Y) & X < Y");
  CQ q2 = MustCQ("panic :- r(U,V)");
  EXPECT_FALSE(CqContained(q1, q2).ok());
}

TEST(UcqContainmentTest, PerDisjunctReduction) {
  UCQ u1 = {MustCQ("panic :- p(X) & q(X)")};
  UCQ u2 = {MustCQ("panic :- p(X)"), MustCQ("panic :- q(X)")};
  auto c = UcqContained(u1, u2);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*c);
  auto back = UcqContained(u2, u1);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
}

// --- Theorem 5.1 ----------------------------------------------------------

TEST(Theorem51Test, Example51UllmanCounterexample) {
  // Paper Example 5.1 (Ullman Example 14.7): C1 rewritten to Theorem 5.1
  // form. C1 subset C2 even though no single containment mapping works.
  CQ c1 = MustCQ("panic :- r(U,V) & r(S,T) & U = T & V = S");
  CQ c2 = MustCQ("panic :- r(U,V) & U <= V");
  auto contained = CqcContained(c1, c2);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  EXPECT_TRUE(*contained);
  auto back = CqcContained(c2, c1);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
}

TEST(Theorem51Test, Example52PreconditionsEnforced) {
  // Repeated variable: Theorem 5.1 does not apply directly.
  CQ repeated = MustCQ("panic :- p(X,X)");
  auto r = CqcContained(repeated, MustCQ("panic :- p(X,Y) & X = Y"));
  EXPECT_FALSE(r.ok());
  // Constant in an ordinary subgoal: also rejected.
  CQ constant = MustCQ("panic :- p(0,X)");
  auto r2 = CqcContained(constant, MustCQ("panic :- p(Z,X) & Z = 0"));
  EXPECT_FALSE(r2.ok());
  // Their normalized forms ARE equivalent, as Example 5.2 notes.
  CQ norm1 = MustCQ("panic :- p(X,Y) & X = Y");
  CQ norm2 = MustCQ("panic :- p(Z,X) & Z = 0");
  auto eq = CqcContained(norm1, norm1);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  auto eq2 = CqcContained(norm2, norm2);
  ASSERT_TRUE(eq2.ok());
  EXPECT_TRUE(*eq2);
}

TEST(Theorem51Test, Example53UnionNeeded) {
  // RED((4,8)) contained in RED((3,6)) U RED((5,10)) but in neither alone.
  CQ red48 = MustCQ("panic :- r(Z) & 4 <= Z & Z <= 8");
  CQ red36 = MustCQ("panic :- r(Z) & 3 <= Z & Z <= 6");
  CQ red510 = MustCQ("panic :- r(Z) & 5 <= Z & Z <= 10");
  auto in_union = CqcContainedInUnion(red48, {red36, red510});
  ASSERT_TRUE(in_union.ok());
  EXPECT_TRUE(*in_union);
  auto in_first = CqcContained(red48, red36);
  ASSERT_TRUE(in_first.ok());
  EXPECT_FALSE(*in_first);
  auto in_second = CqcContained(red48, red510);
  ASSERT_TRUE(in_second.ok());
  EXPECT_FALSE(*in_second);
}

TEST(Theorem51Test, EmptyMappingSetMeansUnsatPremise) {
  // C2 has a predicate not in C1: H empty; containment only if A(C1) unsat.
  CQ c1_sat = MustCQ("panic :- r(X,Y) & X < Y");
  CQ c2 = MustCQ("panic :- s(U) & U < 5");
  auto r = CqcContained(c1_sat, c2);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  CQ c1_unsat = MustCQ("panic :- r(X,Y) & X < Y & Y < X");
  auto r2 = CqcContained(c1_unsat, c2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);  // vacuously contained
}

TEST(Theorem51Test, RefutationYieldsCounterexampleDatabase) {
  CQ c1 = MustCQ("panic :- r(Z) & 4 <= Z & Z <= 8");
  CQ c2 = MustCQ("panic :- r(Z) & 14 <= Z & Z <= 18");
  auto refutation = CqcRefutation(c1, {c2});
  ASSERT_TRUE(refutation.ok());
  ASSERT_TRUE(refutation->has_value());
  auto witness = BuildCanonicalDatabase(c1, **refutation);
  ASSERT_TRUE(witness.has_value());
  // c1 fires on the witness; c2 does not.
  Program p1;
  p1.rules.push_back(c1.ToRule());
  Program p2;
  p2.rules.push_back(c2.ToRule());
  auto v1 = IsViolated(p1, *witness);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(*v1);
  auto v2 = IsViolated(p2, *witness);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(*v2);
}

// --- Klug baseline agrees with Theorem 5.1 --------------------------------

TEST(KlugTest, AgreesOnPaperExamples) {
  CQ c1 = MustCQ("panic :- r(U,V) & r(S,T) & U = T & V = S");
  CQ c2 = MustCQ("panic :- r(U,V) & U <= V");
  auto k = KlugContained(c1, c2);
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  EXPECT_TRUE(*k);
  auto back = KlugContained(c2, c1);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
  CQ red48 = MustCQ("panic :- r(Z) & 4 <= Z & Z <= 8");
  CQ red36 = MustCQ("panic :- r(Z) & 3 <= Z & Z <= 6");
  CQ red510 = MustCQ("panic :- r(Z) & 5 <= Z & Z <= 10");
  auto u = KlugContainedInUnion(red48, {red36, red510});
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(*u);
}

TEST(KlugTest, ReportsLinearizationCount) {
  CQ c1 = MustCQ("panic :- r(U,V) & U < V");
  CQ c2 = MustCQ("panic :- r(X,Y)");
  KlugStats stats;
  auto k = KlugContained(c1, c2, &stats);
  ASSERT_TRUE(k.ok());
  EXPECT_TRUE(*k);
  EXPECT_GT(stats.linearizations, 0u);
}

// --- Linearizations -------------------------------------------------------

TEST(LinearizeTest, CountsOrderedBellNumbers) {
  // Fubini numbers: 1, 1, 3, 13, 75 for n = 0..4 (no constraints).
  EXPECT_EQ(CountLinearizations({}, {}, {}), 1u);
  EXPECT_EQ(CountLinearizations({"A"}, {}, {}), 1u);
  EXPECT_EQ(CountLinearizations({"A", "B"}, {}, {}), 3u);
  EXPECT_EQ(CountLinearizations({"A", "B", "C"}, {}, {}), 13u);
  EXPECT_EQ(CountLinearizations({"A", "B", "C", "D"}, {}, {}), 75u);
}

TEST(LinearizeTest, ConstraintsPrune) {
  arith::Conjunction conj = {
      Comparison{Term::Var("A"), CmpOp::kLt, Term::Var("B")}};
  EXPECT_EQ(CountLinearizations({"A", "B"}, {}, conj), 1u);
}

TEST(LinearizeTest, ConstantsFormBackbone) {
  // One variable against two constants: 5 placements (below, =c1, between,
  // =c2, above).
  EXPECT_EQ(CountLinearizations({"A"}, {V(1), V(2)}, {}), 5u);
}

// --- Exact oracle ---------------------------------------------------------

TEST(ExactTest, AgreesOnPlainCqContainment) {
  CQ q1 = MustCQ("panic :- r(X,Y) & r(Y,Z)");
  CQ q2 = MustCQ("panic :- r(U,V)");
  auto e = ExactCqContained(q1, q2);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(*e);
  auto back = ExactCqContained(q2, q1);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
}

TEST(ExactTest, HandlesRepeatedVarsAndConstants) {
  // Example 5.2's pairs are equivalent — the oracle can check the raw form.
  CQ a = MustCQ("panic :- p(X,X)");
  CQ b = MustCQ("panic :- p(X,Y) & X = Y");
  auto ab = ExactCqContained(a, b);
  ASSERT_TRUE(ab.ok()) << ab.status().ToString();
  EXPECT_TRUE(*ab);
  auto ba = ExactCqContained(b, a);
  ASSERT_TRUE(ba.ok());
  EXPECT_TRUE(*ba);
  CQ c = MustCQ("panic :- p(0,X)");
  CQ d = MustCQ("panic :- p(Z,X) & Z = 0");
  auto cd = ExactCqContained(c, d);
  ASSERT_TRUE(cd.ok());
  EXPECT_TRUE(*cd);
  auto dc = ExactCqContained(d, c);
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(*dc);
}

TEST(ExactTest, NegationContainment) {
  // p & not q is contained in p; p is not contained in p & not q.
  CQ pq = MustCQ("panic :- p(X) & not q(X)");
  CQ p = MustCQ("panic :- p(X)");
  auto a = ExactCqContained(pq, p);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(*a);
  auto b = ExactCqContained(p, pq);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*b);
}

TEST(ExactTest, NegationUnionCase) {
  // p is contained in (p & q) union (p & not q) — requires reasoning about
  // both candidate databases; per-disjunct mapping tests cannot see it.
  CQ p = MustCQ("panic :- p(X)");
  UCQ u2 = {MustCQ("panic :- p(X) & q(X)"),
            MustCQ("panic :- p(X) & not q(X)")};
  auto e = ExactUcqContained({p}, u2);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(*e);
}

TEST(ExactTest, AgreesWithTheorem51OnArithmetic) {
  CQ red48 = MustCQ("panic :- r(Z) & 4 <= Z & Z <= 8");
  CQ red36 = MustCQ("panic :- r(Z) & 3 <= Z & Z <= 6");
  CQ red510 = MustCQ("panic :- r(Z) & 5 <= Z & Z <= 10");
  auto e = ExactUcqContained({red48}, {red36, red510});
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_TRUE(*e);
  auto single = ExactUcqContained({red48}, {red36});
  ASSERT_TRUE(single.ok());
  EXPECT_FALSE(*single);
}

// --- Uniform containment (sound test with negation) -----------------------

TEST(UniformTest, Example41Containment) {
  // C3 (the rewritten constraint) is uniformly contained in C1.
  CQ c3 = MustCQ("panic :- emp(E,D,S) & not dept(D) & D <> toy");
  CQ c1 = MustCQ("panic :- emp(E,D,S) & not dept(D)");
  auto o = UniformContained(c3, c1);
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(*o, Outcome::kHolds);
  // The reverse does not hold; uniform containment reports unknown.
  auto back = UniformContained(c1, c3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Outcome::kUnknown);
}

// --- Randomized agreement sweep -------------------------------------------

/// Generates a random CQC in Theorem 5.1 form: `atoms` binary r-atoms over
/// fresh variables plus `comps` random comparisons between variables and
/// small constants.
CQ RandomCqc(Rng* rng, int atoms, int comps) {
  CQ q;
  q.head.pred = "panic";
  int var_count = 0;
  auto fresh = [&]() { return Term::Var("V" + std::to_string(var_count++)); };
  for (int i = 0; i < atoms; ++i) {
    q.positives.push_back(Atom{"r", {fresh(), fresh()}});
  }
  auto random_term = [&](bool allow_const) -> Term {
    if (allow_const && rng->Chance(1, 4)) {
      return Term::Const(Value(static_cast<int64_t>(rng->Range(0, 3)) * 10));
    }
    return Term::Var("V" + std::to_string(rng->Below(
                               static_cast<uint64_t>(var_count))));
  };
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq, CmpOp::kNe};
  for (int i = 0; i < comps; ++i) {
    Term lhs = random_term(false);  // lhs var keeps instances safe
    Term rhs = random_term(true);
    q.comparisons.push_back(
        Comparison{lhs, ops[rng->Below(4)], rhs});
  }
  return q;
}

TEST(AgreementSweep, Theorem51MatchesKlugAndExact) {
  Rng rng(20260705);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    CQ c1 = RandomCqc(&rng, 2, 2);
    CQ c2 = RandomCqc(&rng, static_cast<int>(1 + rng.Below(2)), 2);
    auto t51 = CqcContained(c1, c2);
    ASSERT_TRUE(t51.ok()) << t51.status().ToString();
    auto klug = KlugContained(c1, c2);
    ASSERT_TRUE(klug.ok()) << klug.status().ToString();
    EXPECT_EQ(*t51, *klug) << "C1: " << c1.ToString()
                           << "\nC2: " << c2.ToString();
    auto exact = ExactCqContained(c1, c2);
    if (exact.ok()) {
      EXPECT_EQ(*t51, *exact) << "C1: " << c1.ToString()
                              << "\nC2: " << c2.ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, 30);  // most instances fit the oracle's limits
}

TEST(AgreementSweep, UnionContainmentMatchesKlug) {
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    CQ c1 = RandomCqc(&rng, 2, 2);
    UCQ u2 = {RandomCqc(&rng, 1, 2), RandomCqc(&rng, 1, 2)};
    auto t51 = CqcContainedInUnion(c1, u2);
    ASSERT_TRUE(t51.ok());
    auto klug = KlugContainedInUnion(c1, u2);
    ASSERT_TRUE(klug.ok());
    EXPECT_EQ(*t51, *klug) << "C1: " << c1.ToString();
  }
}

}  // namespace
}  // namespace ccpi
