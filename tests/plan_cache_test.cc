// The compiled-plan cache (src/plan/) end to end: shape signatures as
// sound pattern keys, the Bind-equals-fresh-compile property of RA plan
// templates, the PlanCache store itself, CompiledProgram-vs-Program
// evaluation equality, and the manager-level guarantee the whole subsystem
// is built around — byte-identical reports and ManagerStats with the cache
// on and off, while the cache demonstrably serves hits.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ra_local_test.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/constraint_manager.h"
#include "plan/plan_cache.h"
#include "plan/ra_plan.h"
#include "plan/update_signature.h"
#include "ra/ra_eval.h"
#include "relational/database.h"
#include "relational/value.h"
#include "updates/independence.h"
#include "updates/update.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

Rule MustParseRule(const char* text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// ---- Shape signatures ----------------------------------------------------

TEST(UpdateSignatureTest, ShapeClassesFollowFirstAppearance) {
  std::vector<Value> none;
  EXPECT_EQ(ShapeSignature({V("a"), V("b"), V("b")}, none), "N0.N1.N1");
  EXPECT_EQ(ShapeSignature({V("x"), V("y"), V("y")}, none), "N0.N1.N1");
  EXPECT_EQ(ShapeSignature({V("a"), V("b"), V("c")}, none), "N0.N1.N2");
  EXPECT_EQ(ShapeSignature({V("a"), V("a"), V("b")}, none), "N0.N0.N1");
  EXPECT_EQ(ShapeSignature({}, none), "");
}

TEST(UpdateSignatureTest, DistinguishedConstantsGetTheirOwnClasses) {
  // Sorted, deduplicated constant pool (Value's total order).
  std::vector<Value> constants = {V("a"), V("b")};
  EXPECT_EQ(ShapeSignature({V("a"), V("x"), V("x")}, constants), "C0.N0.N0");
  EXPECT_EQ(ShapeSignature({V("b"), V("a"), V("q")}, constants), "C1.C0.N0");
  // A non-constant repeating a constant's *class* is impossible: equality
  // with the pool is what routes to C — so same-shape tuples agree on
  // every pool equality.
  EXPECT_NE(ShapeSignature({V("a"), V("a")}, constants),
            ShapeSignature({V("x"), V("x")}, constants));
}

TEST(UpdateSignatureTest, MixedTypesAndKeyRendering) {
  std::vector<Value> constants = {V(5)};
  Update ins = Update::Insert("emp", {V("ann"), V(5)});
  Update del = Update::Delete("emp", {V("ann"), V(5)});
  UpdateSignature a = MakeUpdateSignature(ins, constants);
  UpdateSignature b = MakeUpdateSignature(del, constants);
  EXPECT_EQ(a.Key(), "emp/+/N0.C0");
  EXPECT_EQ(b.Key(), "emp/-/N0.C0");
  EXPECT_NE(a.Key(), b.Key());  // kind is part of the pattern
}

TEST(UpdateSignatureTest, CollectProgramConstantsAndSafety) {
  Program with_cmp = MustParse("panic :- l(X, a) & r(X) & X > 5");
  Program plain = MustParse("panic :- emp(E, b) & not dept(E)");
  std::vector<Value> constants =
      CollectProgramConstants({&with_cmp, &plain});
  // Sorted and deduplicated; contains every constant from atom args and
  // comparison operands across both programs.
  ASSERT_EQ(constants.size(), 3u);
  EXPECT_TRUE(std::is_sorted(constants.begin(), constants.end(),
                             [](const Value& x, const Value& y) {
                               return x < y;
                             }));
  EXPECT_NE(std::find(constants.begin(), constants.end(), V(5)),
            constants.end());
  EXPECT_NE(std::find(constants.begin(), constants.end(), V("a")),
            constants.end());
  EXPECT_NE(std::find(constants.begin(), constants.end(), V("b")),
            constants.end());
  EXPECT_FALSE(SignatureSafe(with_cmp));
  EXPECT_TRUE(SignatureSafe(plain));
}

// ---- RA plan templates: Bind == fresh compile ----------------------------

/// For every (rule, template tuple, bound tuple) triple, the bound
/// template must render identically to compiling the bound tuple from
/// scratch — flags included.
void ExpectBindMatchesFreshCompile(const Rule& rule, const std::string& pred,
                                   const Tuple& representative,
                                   const Tuple& bound_to) {
  Result<RaPlanTemplate> tpl = CompileRaPlan(rule, pred, representative);
  Result<RaLocalTest> fresh = CompileRaLocalTest(rule, pred, bound_to);
  ASSERT_TRUE(tpl.ok()) << tpl.status().ToString();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(tpl->trivially_holds, fresh->trivially_holds);
  EXPECT_EQ(tpl->trivially_violated, fresh->trivially_violated);
  if (tpl->trivially_holds || tpl->trivially_violated) return;
  ASSERT_NE(tpl->expr, nullptr);
  ASSERT_NE(fresh->expr, nullptr);
  RaExprPtr bound = tpl->Bind(bound_to);
  EXPECT_EQ(bound->ToString(), fresh->expr->ToString())
      << "rule: " << rule.ToString()
      << " rep: " << TupleToString(representative)
      << " bound: " << TupleToString(bound_to);
}

TEST(RaPlanTest, BindMatchesFreshCompileAcrossShapes) {
  struct Case {
    const char* rule;
    const char* pred;
    Tuple rep;
    Tuple bound;
  };
  const Case cases[] = {
      // Plain join, all-distinct components.
      {"panic :- l(X, Y) & r(X)", "l", {V(1), V(2)}, {V(7), V(8)}},
      // Repeated variable in the local atom.
      {"panic :- l(X, X) & r(X)", "l", {V(3), V(3)}, {V(9), V(9)}},
      // Repeated component against distinct variables (pattern equality).
      {"panic :- l(X, Y) & r(Y)", "l", {V(4), V(4)}, {V(6), V(6)}},
      // Constant in the local atom, matching tuple.
      {"panic :- l(a, Y) & r(Y)", "l", {V("a"), V(1)}, {V("a"), V(2)}},
      // Several remote atoms sharing variables.
      {"panic :- l(X, Y) & r(X) & s(X, Y)", "l", {V(1), V(2)}, {V(5), V(6)}},
      // String components.
      {"panic :- emp(E, D) & dept(D)", "emp",
       {V("ann"), V("cs")}, {V("bob"), V("ee")}},
  };
  for (const Case& c : cases) {
    ExpectBindMatchesFreshCompile(MustParseRule(c.rule), c.pred, c.rep,
                                  c.bound);
  }
}

TEST(RaPlanTest, TrivialFlagsTransferToSameShapeTuples) {
  // Constant mismatch => trivially holds, for every same-shape tuple.
  Rule rule = MustParseRule("panic :- l(a, Y) & r(Y)");
  ExpectBindMatchesFreshCompile(rule, "l", {V("x"), V(1)}, {V("y"), V(2)});
  // No remote atoms => trivially violated.
  Rule local_only = MustParseRule("panic :- l(X, Y)");
  ExpectBindMatchesFreshCompile(local_only, "l", {V(1), V(2)}, {V(3), V(4)});
}

TEST(RaPlanTest, BoundPlanEvaluatesLikeFreshCompile) {
  Rule rule = MustParseRule("panic :- l(X, Y) & r(X)");
  Database db;
  ASSERT_TRUE(db.Insert("l", {V(7), V(0)}).ok());
  ASSERT_TRUE(db.Insert("l", {V(8), V(1)}).ok());
  Result<RaPlanTemplate> tpl = CompileRaPlan(rule, "l", {V(1), V(2)});
  ASSERT_TRUE(tpl.ok());
  for (const Tuple& t : {Tuple{V(7), V(3)}, Tuple{V(9), V(4)}}) {
    RaExprPtr bound = tpl->Bind(t);
    Result<bool> via_plan = RaNonempty(*bound, db);
    Result<Outcome> via_cold = RaLocalTestOnInsert(rule, "l", t, db);
    ASSERT_TRUE(via_plan.ok());
    ASSERT_TRUE(via_cold.ok());
    EXPECT_EQ(*via_plan ? Outcome::kHolds : Outcome::kUnknown, *via_cold);
  }
}

// ---- PlanCache: the store itself -----------------------------------------

TEST(PlanCacheTest, FindMissThenStoreThenHit) {
  PlanCache cache;
  EXPECT_FALSE(cache.FindTier1("k").has_value());
  cache.StoreTier1("k", PlanCache::Tier1Decision{true});
  ASSERT_TRUE(cache.FindTier1("k").has_value());
  EXPECT_TRUE(cache.FindTier1("k")->holds);
  // First insert wins: a second store does not overwrite.
  cache.StoreTier1("k", PlanCache::Tier1Decision{false});
  EXPECT_TRUE(cache.FindTier1("k")->holds);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, TemplateStoreReturnsWinner) {
  PlanCache cache;
  auto first = std::make_shared<const RaPlanTemplate>();
  auto second = std::make_shared<const RaPlanTemplate>();
  EXPECT_EQ(cache.StoreTemplate("k", first), first);
  // The loser adopts the winner's entry.
  EXPECT_EQ(cache.StoreTemplate("k", second), first);
  EXPECT_EQ(cache.FindTemplate("k"), first);
  EXPECT_EQ(cache.FindTemplate("other"), nullptr);
}

TEST(PlanCacheTest, InvalidateDropsEveryFamily) {
  PlanCache cache;
  cache.StoreTier1("t1", PlanCache::Tier1Decision{true});
  cache.StoreTemplate("tpl", std::make_shared<const RaPlanTemplate>());
  cache.StoreResult("res", PlanCache::BoundResult{Outcome::kHolds, {}});
  auto program = CompileProgram(MustParse("panic :- r(X)"));
  ASSERT_TRUE(program.ok());
  cache.StoreProgram("prog",
                     std::make_shared<const CompiledProgram>(
                         std::move(*program)));
  EXPECT_EQ(cache.size(), 4u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.FindTier1("t1").has_value());
  EXPECT_EQ(cache.FindTemplate("tpl"), nullptr);
  EXPECT_FALSE(cache.FindResult("res").has_value());
  EXPECT_EQ(cache.FindProgram("prog"), nullptr);
}

TEST(PlanCacheTest, ConcurrentStoresConverge) {
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const RaPlanTemplate>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &seen, i] {
      seen[i] = cache.StoreTemplate(
          "k", std::make_shared<const RaPlanTemplate>());
    });
  }
  for (std::thread& t : threads) t.join();
  // Every lane adopted the same winning entry.
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[i], seen[0]);
  EXPECT_EQ(cache.FindTemplate("k"), seen[0]);
}

// ---- CompiledProgram == Program ------------------------------------------

TEST(CompiledProgramTest, EvaluatesIdenticallyToProgramOverload) {
  Program program = MustParse(
      "panic :- q(X) & path(X, Y) & bad(Y)\n"
      "path(X, Y) :- edge(X, Y)\n"
      "path(X, Y) :- edge(X, Z) & path(Z, Y)");
  Database db;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.Insert("edge", {V(i), V(i + 1)}).ok());
  }
  ASSERT_TRUE(db.Insert("q", {V(0)}).ok());
  ASSERT_TRUE(db.Insert("bad", {V(6)}).ok());

  Result<CompiledProgram> plan = CompileProgram(program);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<Database> cold = Evaluate(program, db);
  Result<Database> warm = Evaluate(*plan, db);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold->ToString(), warm->ToString());
  Result<bool> cold_violated = IsViolated(program, db);
  Result<bool> warm_violated = IsViolated(*plan, db);
  ASSERT_TRUE(cold_violated.ok());
  ASSERT_TRUE(warm_violated.ok());
  EXPECT_EQ(*cold_violated, *warm_violated);
  EXPECT_TRUE(*warm_violated);  // the chain really reaches bad(6)
}

TEST(CompiledProgramTest, CompileFailsExactlyWhereEvaluateWould) {
  // Unsafe: head variable not bound by a positive body literal.
  Program unsafe = MustParse("p(X, Y) :- q(X)");
  Result<CompiledProgram> plan = CompileProgram(unsafe);
  Result<Database> eval = Evaluate(unsafe, Database{});
  ASSERT_FALSE(plan.ok());
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(plan.status().code(), eval.status().code());
}

// ---- Manager-level: on/off equality with hits ----------------------------

struct ManagerRun {
  std::vector<std::vector<CheckReport>> reports;
  ManagerStats stats;
  uint64_t plan_hits = 0;
  uint64_t plan_compiles = 0;
};

void ExpectIdenticalRuns(const ManagerRun& off, const ManagerRun& on) {
  ASSERT_EQ(off.reports.size(), on.reports.size());
  for (size_t u = 0; u < off.reports.size(); ++u) {
    ASSERT_EQ(off.reports[u].size(), on.reports[u].size());
    for (size_t i = 0; i < off.reports[u].size(); ++i) {
      EXPECT_EQ(off.reports[u][i].constraint, on.reports[u][i].constraint);
      EXPECT_EQ(off.reports[u][i].outcome, on.reports[u][i].outcome)
          << "update " << u << " " << off.reports[u][i].constraint;
      EXPECT_EQ(off.reports[u][i].tier, on.reports[u][i].tier)
          << "update " << u << " " << off.reports[u][i].constraint;
    }
  }
  EXPECT_EQ(off.stats.resolved_by, on.stats.resolved_by);
  EXPECT_EQ(off.stats.violations, on.stats.violations);
  EXPECT_EQ(off.stats.remote_attempts, on.stats.remote_attempts);
  EXPECT_EQ(off.stats.t3_admitted, on.stats.t3_admitted);
  EXPECT_EQ(off.stats.deferred, on.stats.deferred);
  EXPECT_EQ(off.stats.shed_checks, on.stats.shed_checks);
  // The strong clause: access accounting is byte-identical too — a plan
  // cache hit never changes which reads the evaluation charged.
  EXPECT_EQ(off.stats.access.local_tuples, on.stats.access.local_tuples);
  EXPECT_EQ(off.stats.access.remote_tuples, on.stats.access.remote_tuples);
  EXPECT_EQ(off.stats.access.remote_trips, on.stats.access.remote_trips);
  EXPECT_EQ(off.stats.access.cache_hits, on.stats.access.cache_hits);
  EXPECT_EQ(off.stats.access.cached_tuples, on.stats.access.cached_tuples);
}

/// A comparison-free workload (so the tier-1 memo's soundness gate is
/// open) with heavy pattern repetition across every tier.
ManagerRun RunPatternWorkload(bool plan_cache) {
  ConstraintManager mgr({"l", "emp"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{}, RemoteCacheConfig{}, BudgetConfig{},
                        TopologyConfig{}, PlanCacheConfig{plan_cache});
  // Two remote-only variables (A, B) put "join" past the Fig 6.1 interval
  // machinery and onto the Theorem 5.3 RA test — the path the template
  // cache compiles.
  EXPECT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y,A,B)"))
          .ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "ref", MustParse("panic :- emp(E,D) & not dept(D)"))
                  .ok());
  EXPECT_TRUE(
      mgr.AddConstraint("noloop", MustParse("panic :- l(X,X)")).ok());
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("cs")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("r", {V(100), V(1), V(2)}).ok());

  std::vector<Update> stream;
  for (int i = 0; i < 8; ++i) {
    stream.push_back(Update::Insert("l", {V(i), V(i + 50)}));   // same pattern
    stream.push_back(Update::Insert("emp", {V(i), V("cs")}));   // T3, repeats
    stream.push_back(Update::Delete("l", {V(i), V(i + 50)}));   // T1, repeats
  }
  stream.push_back(Update::Insert("l", {V(3), V(3)}));  // violates noloop
  stream.push_back(Update::Insert("l", {V(3), V(3)}));  // again: same version
  ManagerRun run;
  for (const Update& u : stream) {
    auto reports = mgr.ApplyUpdate(u);
    EXPECT_TRUE(reports.ok()) << reports.status().ToString();
    if (reports.ok()) run.reports.push_back(*reports);
  }
  run.stats = mgr.stats();
  if (plan_cache) {
    run.plan_hits = mgr.metrics().GetCounter("plan.hits")->value();
    run.plan_compiles = mgr.metrics().GetCounter("plan.compiles")->value();
  }
  return run;
}

TEST(PlanCacheManagerTest, CacheOnMatchesOffWithHits) {
  ManagerRun off = RunPatternWorkload(false);
  ManagerRun on = RunPatternWorkload(true);
  ExpectIdenticalRuns(off, on);
  // Non-vacuous: repeated patterns really served cached plans, and
  // compiles stayed well below one per check.
  EXPECT_GT(on.plan_hits, 0u);
  EXPECT_GT(on.plan_compiles, 0u);
  EXPECT_GT(on.plan_hits, on.plan_compiles);
  EXPECT_EQ(off.plan_hits, 0u);
  // The workload exercised something at every tier.
  EXPECT_GT(on.stats.violations, 0u);
  EXPECT_GT(on.stats.resolved_by[Tier::kFullCheck], 0u);
}

TEST(PlanCacheManagerTest, RepeatedRejectedUpdateHitsBoundResultMemo) {
  // A rejected update leaves the database — and so every relation
  // version — untouched, which is exactly when the bound-result memo may
  // replay a tier-2 evaluation. Re-submitting the same violating insert
  // must serve the join constraint's RA evaluation from the memo (hits
  // grow) while charging identical reads (access equality is covered by
  // CacheOnMatchesOffWithHits; here we pin the hit itself).
  ConstraintManager mgr({"l"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{}, RemoteCacheConfig{}, BudgetConfig{},
                        TopologyConfig{}, PlanCacheConfig{true});
  // ICQ-inapplicable (two remote-only variables), so the tier-2 check is
  // the RA test the template cache serves.
  ASSERT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y,A,B)"))
          .ok());
  ASSERT_TRUE(
      mgr.AddConstraint("noloop", MustParse("panic :- l(X,X)")).ok());
  ASSERT_TRUE(mgr.site().db().Insert("l", {V(9), V(5)}).ok());

  Update bad = Update::Insert("l", {V(5), V(5)});
  auto first = mgr.ApplyUpdate(bad);
  ASSERT_TRUE(first.ok());
  uint64_t delta_after_first =
      mgr.metrics().GetCounter("plan.delta_tuples")->value();
  uint64_t hits_after_first = mgr.metrics().GetCounter("plan.hits")->value();
  EXPECT_EQ(delta_after_first, 1u);  // one bound tuple for the join test
  auto second = mgr.ApplyUpdate(bad);
  ASSERT_TRUE(second.ok());
  // Both submissions were rejected by noloop; reports identical.
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].outcome, (*second)[i].outcome);
    EXPECT_EQ((*first)[i].tier, (*second)[i].tier);
  }
  // The second episode bound the same delta tuple into the cached
  // template (delta grows by exactly one) and served both the template
  // and the bound-result memo — at least two hits beyond the first
  // episode's count.
  EXPECT_EQ(mgr.metrics().GetCounter("plan.delta_tuples")->value(),
            delta_after_first + 1);
  EXPECT_GE(mgr.metrics().GetCounter("plan.hits")->value(),
            hits_after_first + 2);
}

TEST(PlanCacheManagerTest, AddConstraintInvalidatesThePatternMemo) {
  ConstraintManager mgr({"l"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{}, RemoteCacheConfig{}, BudgetConfig{},
                        TopologyConfig{}, PlanCacheConfig{true});
  ASSERT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());
  // Seed the rows first: deleting an absent tuple is a no-op episode and
  // runs no checks at all.
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(mgr.site().db().Insert("l", {V(i), V(i + 1)}).ok());
  }
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Delete("l", {V(1), V(2)})).ok());
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Delete("l", {V(3), V(4)})).ok());
  uint64_t compiles_before =
      mgr.metrics().GetCounter("plan.compiles")->value();
  EXPECT_GT(mgr.metrics().GetCounter("plan.hits")->value(), 0u);
  // Registration is a cache epoch: the same pattern recompiles after.
  ASSERT_TRUE(
      mgr.AddConstraint("join2", MustParse("panic :- l(X,Y) & s(X)")).ok());
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Delete("l", {V(5), V(6)})).ok());
  EXPECT_GT(mgr.metrics().GetCounter("plan.compiles")->value(),
            compiles_before);
}

/// A mixed budgeted workload: "deep" walks a 64-edge transitive closure a
/// 4-round fixpoint cap can never finish (deterministic sheds, no wall
/// clock), "ref" completes at tier 3, "join" resolves locally — all
/// comparison-free so every plan-cache layer participates.
ManagerRun RunBudgetedWorkload(bool plan_cache) {
  BudgetConfig budget;
  budget.per_check.max_fixpoint_rounds = 4;
  ConstraintManager mgr({"l", "lq", "emp"}, CostModel{}, ResilienceConfig{},
                        ParallelConfig{}, RemoteCacheConfig{}, budget,
                        TopologyConfig{}, PlanCacheConfig{plan_cache});
  EXPECT_TRUE(
      mgr.AddConstraint("join", MustParse("panic :- l(X,Y) & r(Y)")).ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "deep",
                     MustParse("panic :- lq(X) & path(X,Y) & bad(Y)\n"
                               "path(X,Y) :- edge(X,Y)\n"
                               "path(X,Y) :- edge(X,Z) & path(Z,Y)"))
                  .ok());
  EXPECT_TRUE(mgr.AddConstraint(
                     "ref", MustParse("panic :- emp(E,D) & not dept(D)"))
                  .ok());
  EXPECT_TRUE(mgr.site().db().Insert("dept", {V("cs")}).ok());
  EXPECT_TRUE(mgr.site().db().Insert("r", {V(100)}).ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(mgr.site().db().Insert("edge", {V(i), V(i + 1)}).ok());
  }
  ManagerRun run;
  for (int i = 0; i < 6; ++i) {
    for (const Update& u :
         {Update::Insert("lq", {V(i)}),                // deep: shed at T3
          Update::Insert("emp", {V(i), V("cs")}),      // ref: completes at T3
          Update::Insert("l", {V(i), V(i + 50)}),      // join
          Update::Delete("l", {V(i), V(i + 50)})}) {   // T1 independence
      auto reports = mgr.ApplyUpdate(u);
      EXPECT_TRUE(reports.ok()) << reports.status().ToString();
      if (reports.ok()) run.reports.push_back(*reports);
    }
  }
  run.stats = mgr.stats();
  if (plan_cache) {
    run.plan_hits = mgr.metrics().GetCounter("plan.hits")->value();
    run.plan_compiles = mgr.metrics().GetCounter("plan.compiles")->value();
  }
  return run;
}

TEST(PlanCacheManagerTest, BudgetInvariantHoldsUnderCacheHits) {
  // PR 5's shed/accounting invariant must balance exactly when tier-3
  // evaluations run behind cache-served compilations: a cached plan
  // changes nothing about what tier 3 admits, splits, or sheds.
  ManagerRun off = RunBudgetedWorkload(false);
  ManagerRun on = RunBudgetedWorkload(true);
  ExpectIdenticalRuns(off, on);
  EXPECT_GT(on.plan_hits, 0u);
  auto full = on.stats.resolved_by.find(Tier::kFullCheck);
  size_t resolved_full =
      full != on.stats.resolved_by.end() ? full->second : 0;
  EXPECT_EQ(on.stats.t3_admitted,
            resolved_full + on.stats.deferred + on.stats.shed_checks);
  EXPECT_GT(on.stats.shed_checks, 0u);   // the cap really fired
  EXPECT_GT(resolved_full, 0u);          // and didn't fire on everything
}

// ---- Regression: tier-1 oracle on ground rewritten disjuncts -------------

TEST(IndependenceRegressionTest, GroundRewriteWithNegatedAssumptionIsSafe) {
  // RewriteAfterUpdate(panic :- l(X,X), +l(3,3)) produces a ground,
  // empty-bodied disjunct: X is substituted away and SimplifyCQ discharges
  // the 3=3 equalities, leaving no atoms and no constants. With a negated
  // assumed constraint the check routes to the exact small-model oracle,
  // whose linearization universe is then zero; it used to enumerate one
  // bogus instantiation anyway and throw std::out_of_range. The ground
  // disjunct fires on the empty database where neither member can, so the
  // correct exact answer is "not contained" — kUnknown, never a crash.
  Program noloop = MustParse("panic :- l(X, X)");
  Program ref = MustParse("panic :- emp(E, D) & not dept(D)");
  auto r = HoldsAfterUpdate(noloop, Update::Insert("l", {V(3), V(3)}), {ref});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->outcome, Outcome::kHolds);
}

}  // namespace
}  // namespace ccpi
