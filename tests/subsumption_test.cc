#include <gtest/gtest.h>

#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "subsumption/reduction.h"
#include "subsumption/subsumption.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(SubsumptionTest, StrongerConstraintSubsumesWeaker) {
  // "no employee in two departments" is subsumed by "no employee in sales
  // and any second department at all"? No — test the clear direction:
  // C: panic :- p(X) & q(X)   is subsumed by   C1: panic :- p(X).
  Program c = MustParse("panic :- p(X) & q(X)");
  Program c1 = MustParse("panic :- p(X)");
  auto d = Subsumes(c, {c1});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  EXPECT_TRUE(d->exact);
  // Not the other way around.
  auto back = Subsumes(c1, {c});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->outcome, Outcome::kUnknown);
}

TEST(SubsumptionTest, UnionOfOthersNeeded) {
  // C is violated only when both p and q have an element; either C1 or C2
  // alone does not subsume, the union question is per-disjunct here.
  Program c = MustParse(
      "panic :- p(X) & q(Y)\n");
  Program c1 = MustParse("panic :- p(X)");
  Program c2 = MustParse("panic :- q(X)");
  auto d = Subsumes(c, {c1, c2});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);  // contained in c1 already
}

TEST(SubsumptionTest, ArithmeticSubsumptionViaTheorem51) {
  // Salary cap 100 subsumes salary cap 200.
  Program strict = MustParse("panic :- emp(E,D,S) & S > 200");
  Program loose = MustParse("panic :- emp(E,D,S) & S > 100");
  auto d = Subsumes(strict, {loose});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  EXPECT_EQ(d->method, "theorem-5.1");
  auto back = Subsumes(loose, {strict});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->outcome, Outcome::kUnknown);
}

TEST(SubsumptionTest, UnionOnTheRightWithArithmetic) {
  // The Example 5.3 phenomenon at the subsumption level: [4,8] subsumed by
  // [3,6] together with [5,10], but by neither alone.
  Program mid = MustParse("panic :- r(Z) & 4 <= Z & Z <= 8");
  Program left = MustParse("panic :- r(Z) & 3 <= Z & Z <= 6");
  Program right = MustParse("panic :- r(Z) & 5 <= Z & Z <= 10");
  auto both = Subsumes(mid, {left, right});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->outcome, Outcome::kHolds);
  auto one = Subsumes(mid, {left});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->outcome, Outcome::kUnknown);
}

TEST(SubsumptionTest, NegationViaExactOracle) {
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D) & bad(D)");
  Program c1 = MustParse("panic :- emp(E,D,S) & not dept(D)");
  auto d = Subsumes(c, {c1});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(SubsumptionTest, RecursiveFallsBackToUniformContainment) {
  // Ordinary containment with a recursive subsumed side is undecidable
  // (Shmueli [1987]); the library answers with the SOUND uniform-
  // containment chase instead: kUnknown here (and exact=false flags that
  // kUnknown is not a refutation).
  Program rec = MustParse(
      "panic :- t(X,X)\n"
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & e(Z,Y)\n");
  Program c1 = MustParse("panic :- e(X,X)");
  auto d = Subsumes(rec, {c1});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kUnknown);
  EXPECT_FALSE(d->exact);
  EXPECT_EQ(d->method, "uniform-containment-chase");
}

TEST(SubsumptionTest, RecursiveSelfSubsumptionViaChase) {
  Program rec = MustParse(
      "panic :- boss(E,E)\n"
      "boss(E,M) :- emp(E,D,S) & manager(D,M)\n"
      "boss(E,F) :- boss(E,G) & boss(G,F)\n");
  auto d = Subsumes(rec, {rec});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(SubsumptionTest, NonrecursiveInRecursiveViaChase) {
  // "Two hops exist" is subsumed by "a t-path exists" where t is the
  // recursive closure of e: the chase proves it.
  Program two_hop = MustParse("panic :- e(X,Y) & e(Y,Z)");
  Program path = MustParse(
      "panic :- t(X,Z)\n"
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,W) & t(W,Y)\n");
  auto d = Subsumes(two_hop, {path});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  // The converse cannot be proved (and is false).
  auto back = Subsumes(path, {two_hop});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->outcome, Outcome::kUnknown);
}

TEST(SubsumptionTest, RecursiveWithArithmeticStillUnsupported) {
  Program rec = MustParse(
      "panic :- t(X,X)\n"
      "t(X,Y) :- e(X,Y) & X < Y\n"
      "t(X,Y) :- t(X,Z) & e(Z,Y)\n");
  auto d = Subsumes(rec, {MustParse("panic :- e(X,X)")});
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kUnsupported);
}

TEST(SubsumptionTest, HelperPredicatesUnfoldBeforeSubsumption) {
  Program c = MustParse(
      "panic :- sub(X)\n"
      "sub(X) :- p(X) & q(X)\n");
  Program c1 = MustParse("panic :- p(X)");
  auto d = Subsumes(c, {c1});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(FindRedundantTest, DropsSubsumedKeepsCore) {
  std::vector<Program> constraints = {
      MustParse("panic :- p(X)"),                  // 0: strongest
      MustParse("panic :- p(X) & q(X)"),           // 1: subsumed by 0
      MustParse("panic :- r(X)"),                  // 2: independent
      MustParse("panic :- p(X) & r(Y)"),           // 3: subsumed by 0 (and 2)
  };
  auto redundant = FindRedundantConstraints(constraints);
  ASSERT_TRUE(redundant.ok());
  EXPECT_EQ(*redundant, (std::vector<size_t>{1, 3}));
}

TEST(FindRedundantTest, MutualSubsumptionKeepsOne) {
  // Two equivalent constraints: exactly one survives.
  std::vector<Program> constraints = {
      MustParse("panic :- p(X) & q(Y)"),
      MustParse("panic :- q(B) & p(A)"),
  };
  auto redundant = FindRedundantConstraints(constraints);
  ASSERT_TRUE(redundant.ok());
  EXPECT_EQ(redundant->size(), 1u);
}

// --- Theorem 3.2: containment reduces to subsumption ----------------------

TEST(ReductionTest, ContainmentMatchesSubsumptionVerdict) {
  struct Case {
    const char* q;
    const char* r;
    bool contained;
  };
  const Case cases[] = {
      {"ans(X) :- e(X,Y) & e(Y,Z)", "ans(X) :- e(X,Y)", true},
      {"ans(X) :- e(X,Y)", "ans(X) :- e(X,Y) & e(Y,Z)", false},
      {"ans(X,Y) :- e(X,Y) & e(Y,X)", "ans(X,Y) :- e(X,Y)", true},
      {"ans(X) :- e(X,X)", "ans(X) :- e(X,Y)", true},
      {"ans(X) :- e(X,Y)", "ans(X) :- e(X,X)", false},
  };
  for (const Case& c : cases) {
    auto q = ParseRule(c.q);
    auto r = ParseRule(c.r);
    ASSERT_TRUE(q.ok() && r.ok());
    CQ cq = RuleToCQ(*q);
    CQ cr = RuleToCQ(*r);
    auto [qp, rp] = ReducePairToSubsumption(cq, cr);
    auto sub = Subsumes(qp, {rp});
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    EXPECT_EQ(sub->outcome == Outcome::kHolds, c.contained)
        << "q: " << c.q << "\nr: " << c.r;
  }
}

TEST(ReductionTest, HeadPredicateInBodyGetsRenamed) {
  // e appears in the body AND as the head predicate: the moved head must
  // not be absorbable by a body subgoal.
  auto q = ParseRule("e(X,Y) :- e(X,Z) & e(Z,Y)");
  ASSERT_TRUE(q.ok());
  Program reduced = ReduceContainmentToSubsumption(RuleToCQ(*q));
  ASSERT_EQ(reduced.rules.size(), 1u);
  // First body literal is the moved head with a primed predicate name.
  const Literal& moved = reduced.rules[0].body[0];
  EXPECT_NE(moved.atom.pred, "e");
  EXPECT_EQ(reduced.rules[0].head.pred, kPanic);
}

}  // namespace
}  // namespace ccpi
