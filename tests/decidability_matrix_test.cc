// Section 3 discusses, class by class, how hard constraint subsumption is
// across the Fig 2.1 cube: NP-complete for CQs and unions (Chandra–Merlin,
// Sagiv–Yannakakis), Pi-p-2 with arithmetic (Klug, van der Meyden),
// EXPTIME with recursive subsuming constraints, 3EXPTIME for recursive-in-
// nonrecursive (Chaudhuri–Vardi), undecidable when both sides are
// recursive (Shmueli). This suite pins down how the library's Subsumes
// dispatcher responds to each combination — which cells get a decision
// procedure, which get a sound test, and that the answer is right on a
// representative instance of every cell.

#include <gtest/gtest.h>

#include <string>

#include "datalog/parser.h"
#include "subsumption/subsumption.h"

namespace ccpi {
namespace {

Program MustParse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

/// A subsumed/subsuming pair per class where subsumption genuinely holds,
/// exercising the class's features.
struct Cell {
  const char* cls;
  const char* subsumed;
  const char* subsuming;
  const char* expected_method;
  bool expect_exact;
};

TEST(DecidabilityMatrixTest, DispatchAndVerdictPerClass) {
  const Cell cells[] = {
      // --- nonrecursive, negation-free ---
      {"CQ", "panic :- p(X) & q(X)", "panic :- p(X)", "ucq-containment",
       true},
      {"CQ+arith", "panic :- p(X) & X > 10", "panic :- p(X) & X > 5",
       "theorem-5.1", true},
      {"UCQ",
       "panic :- p(X) & q(X)\n"
       "panic :- r(X) & q(X)\n",
       "panic :- q(X)", "ucq-containment", true},
      {"UCQ+arith",
       "panic :- p(X) & X > 10\n"
       "panic :- p(X) & X < 0\n",
       "panic :- p(X) & X > 5\n"
       "panic :- p(X) & X < 2\n",
       "theorem-5.1", true},
      // --- with negation: the exact small-model oracle ---
      {"CQ+neg", "panic :- p(X) & not q(X) & r(X)", "panic :- p(X) & not q(X)",
       "exact-oracle", true},
      {"UCQ+neg",
       "panic :- p(X) & not q(X)\n"
       "panic :- r(X) & not q(X)\n",
       "panic :- p(X) & not q(X)\n"
       "panic :- r(X)\n",
       "exact-oracle", true},
      // --- recursive: the sound uniform-containment chase ---
      {"recursive (subsuming side)", "panic :- e(X,Y) & e(Y,Z)",
       "panic :- t(X,Z)\n"
       "t(X,Y) :- e(X,Y)\n"
       "t(X,Y) :- t(X,W) & t(W,Y)\n",
       "uniform-containment-chase", false},
      // Both sides recursive: the subsuming side extends the subsumed
      // closure with an extra base rule (note: uniform containment cannot
      // bridge *differently named* helper closures — that is the
      // uniform-vs-ordinary gap, tested in uniform_recursive_test).
      {"recursive (both sides)",
       "panic :- t(X,X)\n"
       "t(X,Y) :- e(X,Y)\n"
       "t(X,Y) :- t(X,Z) & t(Z,Y)\n",
       "panic :- t(X,X)\n"
       "t(X,Y) :- e(X,Y)\n"
       "t(X,Y) :- f(X,Y)\n"
       "t(X,Y) :- t(X,Z) & t(Z,Y)\n",
       "uniform-containment-chase", false},
  };
  for (const Cell& cell : cells) {
    auto d = Subsumes(MustParse(cell.subsumed), {MustParse(cell.subsuming)});
    ASSERT_TRUE(d.ok()) << cell.cls << ": " << d.status().ToString();
    EXPECT_EQ(d->outcome, Outcome::kHolds) << cell.cls;
    EXPECT_EQ(d->method, cell.expected_method) << cell.cls;
    EXPECT_EQ(d->exact, cell.expect_exact) << cell.cls;
  }
}

TEST(DecidabilityMatrixTest, NonSubsumptionIsDistinguishedWhereExact) {
  // Where the dispatcher is exact, flipping each pair must yield a
  // definitive "not subsumed" (kUnknown with exact=true).
  struct Pair {
    const char* a;
    const char* b;
  };
  const Pair pairs[] = {
      {"panic :- p(X)", "panic :- p(X) & q(X)"},
      {"panic :- p(X) & X > 5", "panic :- p(X) & X > 10"},
      {"panic :- p(X) & not q(X)", "panic :- p(X) & not q(X) & r(X)"},
  };
  for (const Pair& pair : pairs) {
    auto d = Subsumes(MustParse(pair.a), {MustParse(pair.b)});
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->outcome, Outcome::kUnknown) << pair.a;
    EXPECT_TRUE(d->exact) << pair.a;
  }
}

TEST(DecidabilityMatrixTest, UndecidableCornerStaysSoundNotSilent) {
  // Both sides recursive AND genuinely different: the chase answers
  // kUnknown rather than guessing, and marks itself inexact.
  Program twisted = MustParse(
      "panic :- t(X,X)\n"
      "t(X,Y) :- e(X,Y)\n"
      "t(X,Y) :- t(X,Z) & t(Z,Y)\n");
  Program reversed = MustParse(
      "panic :- t(X,X)\n"
      "t(X,Y) :- e(Y,X)\n"
      "t(X,Y) :- t(X,Z) & t(Z,Y)\n");
  auto d = Subsumes(twisted, {reversed});
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->exact);
  // (A cycle t(X,X) exists via e iff one exists via reversed e, so this
  // subsumption actually holds semantically — but no sound procedure here
  // can know that; kUnknown is the honest answer.)
  EXPECT_EQ(d->outcome, Outcome::kUnknown);
}

TEST(DecidabilityMatrixTest, MixedNegationArithmeticFallsBackSoundly) {
  // Negation AND arithmetic together: the exact oracle handles small
  // instances; the answer agrees with the obvious semantics.
  Program a = MustParse("panic :- p(X) & not q(X) & X > 10");
  Program b = MustParse("panic :- p(X) & not q(X) & X > 5");
  auto d = Subsumes(a, {b});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  auto back = Subsumes(b, {a});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->outcome, Outcome::kUnknown);
}

}  // namespace
}  // namespace ccpi
