#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "updates/independence.h"
#include "updates/preservation.h"
#include "updates/rewrite.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

bool MustViolated(const Program& c, const Database& db) {
  auto v = IsViolated(c, db);
  EXPECT_TRUE(v.ok()) << v.status().ToString() << "\n" << c.ToString();
  return v.ok() && *v;
}

/// The defining property of every rewrite: C'(D) == C(D after u).
void CheckRewriteSemantics(const Program& c, const Program& rewritten,
                           const Update& u, const Database& db) {
  Database after = db;
  ASSERT_TRUE(u.ApplyTo(&after).ok());
  EXPECT_EQ(MustViolated(rewritten, db), MustViolated(c, after))
      << "constraint:\n"
      << c.ToString() << "rewritten:\n"
      << rewritten.ToString() << "update: " << u.ToString() << "db:\n"
      << db.ToString();
}

Database RandomDb(Rng* rng, size_t tuples) {
  Database db;
  for (size_t i = 0; i < tuples; ++i) {
    std::string pred = rng->Chance(1, 2) ? "p" : "q";
    EXPECT_TRUE(
        db.Insert(pred, {V(rng->Range(0, 3)), V(rng->Range(0, 3))}).ok());
  }
  for (size_t i = 0; i < tuples / 2; ++i) {
    EXPECT_TRUE(db.Insert("dept", {V(rng->Range(0, 3))}).ok());
  }
  return db;
}

TEST(RewriteInsertTest, Example41HelperEncoding) {
  // C1 with toy inserted into dept (Example 4.1).
  Program c1 = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Update u = Update::Insert("dept", {V("toy")});
  auto c3 = RewriteAfterInsert(c1, u);
  ASSERT_TRUE(c3.ok()) << c3.status().ToString();
  // dept1(D) :- dept(D);  dept1(toy);  panic over dept1.
  EXPECT_EQ(c3->rules.size(), 3u);

  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("toy"), V(10)}).ok());
  // Before the insert C1 is violated (toy not a department); after it is
  // not — C3 must say "not violated" already on the before-state.
  EXPECT_TRUE(MustViolated(c1, db));
  EXPECT_FALSE(MustViolated(*c3, db));
  CheckRewriteSemantics(c1, *c3, u, db);
}

TEST(RewriteInsertTest, InlineEncodingMatchesHelper) {
  Program c1 = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Update u = Update::Insert("dept", {V("toy")});
  auto inline_enc = RewriteAfterInsertInline(c1, u);
  ASSERT_TRUE(inline_enc.ok());
  // The single-rule form: panic :- emp(E,D,S) & not dept(D) & D <> toy.
  ASSERT_EQ(inline_enc->rules.size(), 1u);
  EXPECT_EQ(inline_enc->rules[0].body.size(), 3u);

  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDb(&rng, 6);
    ASSERT_TRUE(
        db.Insert("emp", {V(rng.Range(0, 3)), V(rng.Range(0, 3)),
                          V(rng.Range(0, 200))})
            .ok());
    CheckRewriteSemantics(c1, *inline_enc, u, db);
  }
}

TEST(RewriteInsertTest, PositiveOccurrenceSemantics) {
  Program c = MustParse("panic :- p(X,Y) & q(Y,X)");
  Update u = Update::Insert("p", {V(1), V(2)});
  auto helper = RewriteAfterInsert(c, u);
  auto inlined = RewriteAfterInsertInline(c, u);
  ASSERT_TRUE(helper.ok());
  ASSERT_TRUE(inlined.ok());
  EXPECT_EQ(inlined->rules.size(), 2u);  // old-p branch + inserted-tuple
  Rng rng(11);
  for (int i = 0; i < 25; ++i) {
    Database db = RandomDb(&rng, 5);
    CheckRewriteSemantics(c, *helper, u, db);
    CheckRewriteSemantics(c, *inlined, u, db);
  }
}

TEST(RewriteInsertTest, UnmentionedPredicateIsIdentity) {
  Program c = MustParse("panic :- p(X,Y)");
  Update u = Update::Insert("unrelated", {V(1)});
  auto r = RewriteAfterInsert(c, u);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), c.ToString());
}

TEST(RewriteInsertTest, UpdateToIdbRejected) {
  Program c = MustParse(
      "panic :- helper(X)\n"
      "helper(X) :- p(X)\n");
  auto r = RewriteAfterInsert(c, Update::Insert("helper", {V(1)}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RewriteDeleteTest, Example42BothEncodings) {
  // Delete (jones, shoe, 50) from emp; both Example 4.2 encodings.
  Program c2 = MustParse("panic :- emp(E,D,S) & S > 100");
  Update u = Update::Delete("emp", {V("jones"), V("shoe"), V(50)});
  auto cmp_enc = RewriteAfterDelete(c2, u, DeleteEncoding::kComparisons);
  auto neg_enc = RewriteAfterDelete(c2, u, DeleteEncoding::kNegation);
  ASSERT_TRUE(cmp_enc.ok());
  ASSERT_TRUE(neg_enc.ok());
  // Comparison encoding: original rule + 3 emp1 rules.
  EXPECT_EQ(cmp_enc->rules.size(), 4u);
  // Negation encoding: original rule + emp1 rule + marker fact.
  EXPECT_EQ(neg_enc->rules.size(), 3u);

  Database db;
  ASSERT_TRUE(db.Insert("emp", {V("jones"), V("shoe"), V(50)}).ok());
  ASSERT_TRUE(db.Insert("emp", {V("ann"), V("toy"), V(150)}).ok());
  CheckRewriteSemantics(c2, *cmp_enc, u, db);
  CheckRewriteSemantics(c2, *neg_enc, u, db);

  // And when the deleted tuple itself was the only violation:
  Database db2;
  ASSERT_TRUE(db2.Insert("emp", {V("jones"), V("shoe"), V(150)}).ok());
  Update u2 = Update::Delete("emp", {V("jones"), V("shoe"), V(150)});
  auto enc2 = RewriteAfterDelete(c2, u2, DeleteEncoding::kComparisons);
  ASSERT_TRUE(enc2.ok());
  EXPECT_TRUE(MustViolated(c2, db2));
  EXPECT_FALSE(MustViolated(*enc2, db2));  // after deletion: no violation
}

TEST(RewriteDeleteTest, RandomizedSemanticsSweep) {
  Rng rng(2026);
  Program c = MustParse("panic :- p(X,Y) & q(Y,Z) & X < Z");
  for (int i = 0; i < 30; ++i) {
    Database db = RandomDb(&rng, 6);
    Tuple victim = {V(rng.Range(0, 3)), V(rng.Range(0, 3))};
    Update u = Update::Delete("p", victim);
    for (DeleteEncoding enc :
         {DeleteEncoding::kComparisons, DeleteEncoding::kNegation}) {
      auto rewritten = RewriteAfterDelete(c, u, enc);
      ASSERT_TRUE(rewritten.ok());
      CheckRewriteSemantics(c, *rewritten, u, db);
    }
  }
}

TEST(RewriteInsertTest, RandomizedSemanticsSweep) {
  Rng rng(99);
  Program c = MustParse("panic :- p(X,Y) & not q(X,Y)");
  for (int i = 0; i < 30; ++i) {
    Database db = RandomDb(&rng, 6);
    Tuple t = {V(rng.Range(0, 3)), V(rng.Range(0, 3))};
    std::string pred = rng.Chance(1, 2) ? "p" : "q";
    Update u = Update::Insert(pred, t);
    auto helper = RewriteAfterInsert(c, u);
    ASSERT_TRUE(helper.ok());
    CheckRewriteSemantics(c, *helper, u, db);
    auto inlined = RewriteAfterInsertInline(c, u);
    ASSERT_TRUE(inlined.ok());
    CheckRewriteSemantics(c, *inlined, u, db);
  }
}

// --- Query independence (Section 4) ---------------------------------------

TEST(IndependenceTest, Example41FullScenario) {
  // Inserting toy into dept cannot violate the referential-integrity
  // constraint C1 (it can only remove violations). C2 is immaterial.
  Program c1 = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Program c2 = MustParse("panic :- emp(E,D,S) & S > 100");
  Update u = Update::Insert("dept", {V("toy")});
  auto d = HoldsAfterUpdate(c1, u, {c2});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
  // C2 does not mention dept at all.
  auto d2 = HoldsAfterUpdate(c2, u, {c1});
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->outcome, Outcome::kHolds);
}

TEST(IndependenceTest, InsertIntoPositiveBodyIsNotIndependent) {
  Program c = MustParse("panic :- emp(E,D,S) & S > 100");
  Update u = Update::Insert("emp", {V("x"), V("d"), V(500)});
  auto d = HoldsAfterUpdate(c, u, {});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kUnknown);  // the update itself violates
}

TEST(IndependenceTest, InsertBelowThresholdIsIndependent) {
  // Inserting a tuple with salary 50 can never trigger S > 100.
  Program c = MustParse("panic :- emp(E,D,S) & S > 100");
  Update u = Update::Insert("emp", {V("x"), V("d"), V(50)});
  auto d = HoldsAfterUpdate(c, u, {});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(IndependenceTest, DeletionFromMonotoneConstraintIsIndependent) {
  // Deleting can never violate a negation-free constraint.
  Program c = MustParse("panic :- p(X,Y) & q(Y,Z) & X < Z");
  Update u = Update::Delete("p", {V(1), V(2)});
  auto d = HoldsAfterUpdate(c, u, {});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

TEST(IndependenceTest, DeletionFromNegatedOccurrenceIsNot) {
  Program c = MustParse("panic :- emp(E,D,S) & not dept(D)");
  Update u = Update::Delete("dept", {V("toy")});
  auto d = HoldsAfterUpdate(c, u, {});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kUnknown);  // employees of toy break C
}

TEST(IndependenceTest, AssumedConstraintMakesTheDifference) {
  // Inserting an employee with small salary threatens the referential
  // constraint, unless another constraint guarantees small salaries only
  // exist in registered departments... Construct the paper-style scenario:
  // C: panic :- emp(E,D,S) & S < 0  (no negative salaries)
  // Insert emp(x, d, 5): C independent on its own.
  Program c = MustParse("panic :- emp(E,D,S) & S < 0");
  Update u = Update::Insert("emp", {V("x"), V("d"), V(5)});
  auto d = HoldsAfterUpdate(c, u, {});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->outcome, Outcome::kHolds);
}

// --- Figs 4.1 / 4.2 --------------------------------------------------------

TEST(PreservationTest, InsertionMatrixMatchesFig41) {
  auto cells = ComputeInsertionPreservation();
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells->size(), 12u);
  size_t preserved = 0;
  for (const PreservationCell& cell : *cells) {
    bool expected = cell.cls.shape != Shape::kSingleCQ;  // the 8 circles
    EXPECT_EQ(cell.preserved, expected)
        << cell.cls.ToString() << ": " << cell.note;
    preserved += cell.preserved ? 1 : 0;
  }
  EXPECT_EQ(preserved, 8u);
}

TEST(PreservationTest, DeletionMatrixMatchesFig42) {
  auto cells = ComputeDeletionPreservation();
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells->size(), 12u);
  size_t preserved = 0;
  for (const PreservationCell& cell : *cells) {
    bool expected = cell.cls.shape != Shape::kSingleCQ &&
                    (cell.cls.negation || cell.cls.arithmetic);  // 6 circles
    EXPECT_EQ(cell.preserved, expected)
        << cell.cls.ToString() << ": " << cell.note;
    preserved += cell.preserved ? 1 : 0;
  }
  EXPECT_EQ(preserved, 6u);
}

TEST(PreservationTest, TableRenders) {
  auto cells = ComputeInsertionPreservation();
  ASSERT_TRUE(cells.ok());
  std::string table = RenderPreservationTable(*cells, "Fig 4.1");
  EXPECT_NE(table.find("Fig 4.1"), std::string::npos);
  EXPECT_NE(table.find("( YES )"), std::string::npos);
}

}  // namespace
}  // namespace ccpi
