// Theorem 4.1: the constraint C3 ("after inserting toy into dept, no
// employee is in an unregistered department") cannot be expressed as a
// single CQ over emp/dept without arithmetic comparisons, even with
// negation.
//
// The theorem is about an infinite space of candidate queries, so it cannot
// be *proved* by testing; this suite does the strongest finite check: it
// enumerates every safe single-CQ candidate (with negation, without
// arithmetic) up to a size bound — including candidates using the constants
// toy/shoe, which the proof explicitly considers — and verifies that each
// one disagrees with C3 on at least one probe database. The probe battery
// contains the proof's own two-database construction.

#include <gtest/gtest.h>

#include <vector>

#include "datalog/ast.h"
#include "datalog/parser.h"
#include "datalog/safety.h"
#include "eval/engine.h"

namespace ccpi {
namespace {

/// C3 as a program (the Example 4.1 helper encoding).
Program MakeC3() {
  auto p = ParseProgram(
      "panic :- emp(E,D,S) & not dept1(D)\n"
      "dept1(D) :- dept(D)\n"
      "dept1(toy)\n");
  EXPECT_TRUE(p.ok());
  return *p;
}

/// Probe battery: every database with employees over departments
/// {shoe, toy, hat} (same employee/salary; only the department matters to
/// C3) and every subset of those departments registered in dept. This
/// includes the proof's pair: {emp(e,shoe,s), emp(e,toy,s)} with dept empty
/// and with dept = {shoe}.
std::vector<Database> ProbeDatabases() {
  const char* depts[] = {"shoe", "toy", "hat"};
  std::vector<Database> probes;
  for (int emp_mask = 0; emp_mask < 8; ++emp_mask) {
    for (int dept_mask = 0; dept_mask < 8; ++dept_mask) {
      Database db;
      for (int i = 0; i < 3; ++i) {
        if (emp_mask & (1 << i)) {
          EXPECT_TRUE(db.Insert("emp", {V("e"), V(depts[i]), V("s")}).ok());
        }
        if (dept_mask & (1 << i)) {
          EXPECT_TRUE(db.Insert("dept", {V(depts[i])}).ok());
        }
      }
      probes.push_back(std::move(db));
    }
  }
  return probes;
}

/// Enumerates candidate literals: emp/dept atoms, positive or negated,
/// with arguments drawn from three variables and the constants toy/shoe.
std::vector<Literal> CandidateLiterals() {
  std::vector<Term> terms = {Term::Var("A"), Term::Var("B"), Term::Var("C"),
                             Term::Const(V("toy")), Term::Const(V("shoe"))};
  std::vector<Literal> pool;
  for (const Term& t1 : terms) {
    Atom dept{"dept", {t1}};
    pool.push_back(Literal::Positive(dept));
    pool.push_back(Literal::Negated(dept));
    for (const Term& t2 : terms) {
      for (const Term& t3 : terms) {
        Atom emp{"emp", {t1, t2, t3}};
        pool.push_back(Literal::Positive(emp));
        pool.push_back(Literal::Negated(emp));
      }
    }
  }
  return pool;
}

/// True iff the candidate agrees with C3 on every probe.
bool MatchesC3Everywhere(const Program& candidate, const Program& c3,
                         const std::vector<Database>& probes) {
  for (const Database& db : probes) {
    auto cv = IsViolated(candidate, db);
    if (!cv.ok()) return false;  // unsafe enumerants are filtered earlier
    auto rv = IsViolated(c3, db);
    EXPECT_TRUE(rv.ok());
    if (*cv != *rv) return false;
  }
  return true;
}

TEST(Theorem41Test, NoSingleCqWithNegationExpressesC3) {
  Program c3 = MakeC3();
  std::vector<Database> probes = ProbeDatabases();
  std::vector<Literal> pool = CandidateLiterals();

  size_t candidates = 0;
  // All 1- and 2-subgoal safe candidates.
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i; j <= pool.size(); ++j) {
      Rule rule;
      rule.head = Atom{kPanic, {}};
      rule.body.push_back(pool[i]);
      if (j < pool.size()) rule.body.push_back(pool[j]);
      if (!CheckRuleSafety(rule).ok()) continue;
      ++candidates;
      Program candidate;
      candidate.rules.push_back(rule);
      EXPECT_FALSE(MatchesC3Everywhere(candidate, c3, probes))
          << "Theorem 4.1 falsified by: " << rule.ToString();
    }
  }
  // The enumeration is genuinely large (sanity check on coverage).
  EXPECT_GT(candidates, 10000u);
}

TEST(Theorem41Test, ProofDatabasePairBehavesAsInTheText) {
  Program c3 = MakeC3();
  // D1 = {emp(e,shoe,s), emp(e,toy,s)}, no departments: C3 produces panic.
  Database d1;
  ASSERT_TRUE(d1.Insert("emp", {V("e"), V("shoe"), V("s")}).ok());
  ASSERT_TRUE(d1.Insert("emp", {V("e"), V("toy"), V("s")}).ok());
  auto v1 = IsViolated(c3, d1);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(*v1);
  // D2 = D1 + dept(shoe): C3 does NOT produce panic.
  Database d2 = d1;
  ASSERT_TRUE(d2.Insert("dept", {V("shoe")}).ok());
  auto v2 = IsViolated(c3, d2);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(*v2);
}

TEST(Theorem41Test, WithArithmeticTheSingleRuleWorks) {
  // The contrast: allowing <>, the single rule from Example 4.1 expresses
  // C3 exactly (checked on the full probe battery).
  auto candidate =
      ParseProgram("panic :- emp(E,D,S) & not dept(D) & D <> toy");
  ASSERT_TRUE(candidate.ok());
  Program c3 = MakeC3();
  for (const Database& db : ProbeDatabases()) {
    auto cv = IsViolated(*candidate, db);
    auto rv = IsViolated(c3, db);
    ASSERT_TRUE(cv.ok() && rv.ok());
    EXPECT_EQ(*cv, *rv);
  }
}

}  // namespace
}  // namespace ccpi
