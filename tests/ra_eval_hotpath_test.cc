// Pins the RA evaluator's hot-path contracts:
//  - kScan borrows the stored relation instead of copying it: nonemptiness
//    and selection over a frozen relation perform zero Relation copies,
//    zero content-version churn, and zero index rebuilds.
//  - The hash-join fast path pays the same budget checkpoints as the
//    nested-loop plan shape it replaces, so budgeted runs shed identically
//    whichever shape the evaluator picks.
//  - kUnion's move-then-insert construction keeps the content-version
//    invariant (equal versions imply equal contents) for the result.

#include <gtest/gtest.h>

#include "ra/ra_eval.h"
#include "ra/ra_expr.h"
#include "relational/database.h"
#include "util/budget.h"

namespace ccpi {
namespace {

Database FrozenDb() {
  Database db;
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(db.Insert("l", {V(i), V(i % 4)}).ok());
    EXPECT_TRUE(db.Insert("r", {V(i % 4), V(100 + i)}).ok());
  }
  db.FreezeIndexes();
  return db;
}

TEST(RaEvalHotpathTest, NonemptinessOfScanCopiesNothing) {
  Database db = FrozenDb();
  uint64_t copies = Relation::DebugCopyCount();
  uint64_t versions = Relation::DebugVersionCounter();
  uint64_t builds = Relation::DebugIndexBuildCount();
  auto r = RaNonempty(*RaExpr::Scan("l", 2), db);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_EQ(Relation::DebugCopyCount(), copies)
      << "a bare scan must borrow, not copy";
  EXPECT_EQ(Relation::DebugVersionCounter(), versions)
      << "reading must not restamp anything";
  EXPECT_EQ(Relation::DebugIndexBuildCount(), builds)
      << "a frozen relation must never rebuild its indexes";
}

TEST(RaEvalHotpathTest, SelectOverScanCopiesNoRelation) {
  Database db = FrozenDb();
  auto expr = RaExpr::Select(
      RaExpr::Scan("l", 2),
      {RaCondition{RaOperand::Col(1), CmpOp::kEq, RaOperand::Const(V(2))}});
  uint64_t copies = Relation::DebugCopyCount();
  uint64_t builds = Relation::DebugIndexBuildCount();
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 4u);
  EXPECT_EQ(Relation::DebugCopyCount(), copies)
      << "selection builds its output; it must not copy its input";
  EXPECT_EQ(Relation::DebugIndexBuildCount(), builds);
}

TEST(RaEvalHotpathTest, MaterializingABareScanCopiesExactlyOnce) {
  // The one copy left: a caller of EvalRa that asks for a bare scan as an
  // owned Relation. That copy happens at the public boundary, not per
  // node.
  Database db = FrozenDb();
  uint64_t copies = Relation::DebugCopyCount();
  auto rel = EvalRa(*RaExpr::Scan("l", 2), db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 16u);
  EXPECT_EQ(Relation::DebugCopyCount(), copies + 1);
}

TEST(RaEvalHotpathTest, ScanResultsStayCorrectAfterBorrowFix) {
  // The borrow must not change results: scan, select, project, and
  // difference over scans produce the same contents as ever.
  Database db = FrozenDb();
  auto rel = EvalRa(*RaExpr::Scan("r", 2), db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 16u);
  EXPECT_TRUE(rel->Contains({V(3), V(103)}));

  auto diff = EvalRa(*RaExpr::Difference(RaExpr::Scan("l", 2),
                                         RaExpr::Scan("l", 2)),
                     db);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
}

// ---- kUnion version-stamp semantics --------------------------------------

TEST(RaEvalHotpathTest, UnionOfIdenticalInputsKeepsVersionInvariant) {
  // UNION builds its result by moving the left input in and inserting the
  // right. When every insert is a duplicate the result's version equals
  // the left input's — which is correct, because its contents equal the
  // left input's too (equal version, equal contents). A version-keyed
  // cache can treat them interchangeably.
  Database db = FrozenDb();
  auto expr = RaExpr::Union(RaExpr::Scan("l", 2), RaExpr::Scan("l", 2));
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 16u);
  EXPECT_EQ(rel->version(), db.Get("l", 2).version());
}

TEST(RaEvalHotpathTest, UnionWithNewRowsGetsAFreshVersion) {
  // The moment one insert lands, the result must NOT alias either input's
  // version: its contents differ from both.
  Database db = FrozenDb();
  auto expr = RaExpr::Union(RaExpr::Scan("l", 2), RaExpr::Scan("r", 2));
  auto rel = EvalRa(*expr, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_GT(rel->size(), 16u);
  EXPECT_NE(rel->version(), db.Get("l", 2).version());
  EXPECT_NE(rel->version(), db.Get("r", 2).version());
}

// ---- Budget-checkpoint parity --------------------------------------------

/// sigma[#1=#3](L x R): the shape EvalRaNode routes through the hash-join
/// fast path.
RaExprPtr HashJoinShape() {
  return RaExpr::Select(
      RaExpr::Product(RaExpr::Scan("l", 2), RaExpr::Scan("r", 2)),
      {RaCondition{RaOperand::Col(0), CmpOp::kEq, RaOperand::Col(2)}});
}

/// sigma[#1<=#3 & #1>=#3](L x R): semantically identical output, but no
/// usable equality key, so it takes the nested-loop product path.
RaExprPtr NestedLoopShape() {
  return RaExpr::Select(
      RaExpr::Product(RaExpr::Scan("l", 2), RaExpr::Scan("r", 2)),
      {RaCondition{RaOperand::Col(0), CmpOp::kLe, RaOperand::Col(2)},
       RaCondition{RaOperand::Col(0), CmpOp::kGe, RaOperand::Col(2)}});
}

TEST(RaEvalHotpathTest, HashJoinPaysSameBudgetCheckpointsAsNestedLoop) {
  Database db = FrozenDb();
  ExecutionBudget budget;
  budget.deadline_ms = 1000000;  // armed but never exhausted

  BudgetScope hash_scope = BudgetScope::Start(budget);
  auto hash = EvalRa(*HashJoinShape(), db, nullptr, nullptr, &hash_scope);
  ASSERT_TRUE(hash.ok());

  BudgetScope loop_scope = BudgetScope::Start(budget);
  auto loop = EvalRa(*NestedLoopShape(), db, nullptr, nullptr, &loop_scope);
  ASSERT_TRUE(loop.ok());

  // Identical output rows...
  ASSERT_EQ(hash->size(), loop->size());
  for (const Tuple& t : hash->rows()) EXPECT_TRUE(loop->Contains(t));
  EXPECT_GT(hash->size(), 0u);
  // ...and identical budget observations: select, product, two scans on
  // both shapes. Before the parity fix the hash path skipped the product
  // node's checkpoint, so a deadline firing between the two observations
  // shed on one plan shape and completed on the other.
  EXPECT_EQ(hash_scope.checkpoints(), loop_scope.checkpoints());
  EXPECT_EQ(hash_scope.checkpoints(), 4u);
}

TEST(RaEvalHotpathTest, CancelledBudgetShedsBothPlanShapesIdentically) {
  Database db = FrozenDb();
  CancellationToken token;
  token.Cancel();
  ExecutionBudget budget;
  budget.deadline_ms = 1000000;

  BudgetScope hash_scope = BudgetScope::Start(budget, &token);
  auto hash = EvalRa(*HashJoinShape(), db, nullptr, nullptr, &hash_scope);
  BudgetScope loop_scope = BudgetScope::Start(budget, &token);
  auto loop = EvalRa(*NestedLoopShape(), db, nullptr, nullptr, &loop_scope);

  EXPECT_FALSE(hash.ok());
  EXPECT_FALSE(loop.ok());
  EXPECT_EQ(hash.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(loop.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(hash_scope.checkpoints(), loop_scope.checkpoints());
}

// ---- Columnar and row paths agree in the evaluator ------------------------

TEST(RaEvalHotpathTest, FrozenAndUnfrozenEvaluationsAgree) {
  // The same expressions over the same contents, frozen (columnar
  // kernels) and unfrozen (row loops): identical rows in identical
  // insertion order.
  Database frozen = FrozenDb();
  Database plain;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(plain.Insert("l", {V(i), V(i % 4)}).ok());
    ASSERT_TRUE(plain.Insert("r", {V(i % 4), V(100 + i)}).ok());
  }

  std::vector<RaExprPtr> exprs;
  exprs.push_back(HashJoinShape());
  exprs.push_back(NestedLoopShape());
  exprs.push_back(RaExpr::Select(
      RaExpr::Scan("l", 2),
      {RaCondition{RaOperand::Col(1), CmpOp::kGe, RaOperand::Const(V(2))}}));
  exprs.push_back(RaExpr::Select(
      RaExpr::Scan("l", 2),
      {RaCondition{RaOperand::Const(V(5)), CmpOp::kGt, RaOperand::Col(0)},
       RaCondition{RaOperand::Col(1), CmpOp::kNe, RaOperand::Const(V(0))}}));
  exprs.push_back(RaExpr::Project(RaExpr::Scan("l", 2), {1}));
  exprs.push_back(
      RaExpr::Union(RaExpr::Project(RaExpr::Scan("l", 2), {0}),
                    RaExpr::Project(RaExpr::Scan("r", 2), {0})));
  for (const RaExprPtr& expr : exprs) {
    auto a = EvalRa(*expr, frozen);
    auto b = EvalRa(*expr, plain);
    ASSERT_TRUE(a.ok()) << expr->ToString();
    ASSERT_TRUE(b.ok()) << expr->ToString();
    EXPECT_EQ(a->rows(), b->rows()) << expr->ToString();
  }
}

}  // namespace
}  // namespace ccpi
