// Correlated failure domains, per-site latency models, and hedged remote
// reads. The robustness properties of ISSUE 10: a domain-level outage
// darkens every member site together (and each member is caught up
// independently on recovery); latency draws are deterministic per seed
// with the fixed model consuming no randomness at all; hedged batched
// reads obey the exact billing rules (issued == won + wasted, one extra
// physical trip per issued hedge, tuples counted once); and the
// latency-aware shed refuses a doomed trip *before* paying for it.

#include <gtest/gtest.h>

#include <string>

#include "datalog/parser.h"
#include "distsim/cost_model.h"
#include "distsim/fault_injector.h"
#include "distsim/site_db.h"
#include "distsim/topology.h"
#include "manager/constraint_manager.h"
#include "manager/script.h"
#include "util/thread_pool.h"

namespace ccpi {
namespace {

Program MustParse(const char* text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(FailureDomainTest, ExpandDomainOutagesCopiesWindowsToEveryMember) {
  TopologyConfig config;
  config.sites = 4;
  FailureDomain rack;
  rack.name = "rack";
  rack.members = {1, 3};
  rack.outages.push_back(OutageWindow{2, 7});
  rack.outages.push_back(OutageWindow{9, 12});
  config.domains.push_back(rack);
  std::vector<std::vector<OutageWindow>> expanded =
      ExpandDomainOutages(config);
  ASSERT_EQ(expanded.size(), 4u);
  EXPECT_TRUE(expanded[0].empty());
  EXPECT_TRUE(expanded[2].empty());
  for (size_t member : {size_t{1}, size_t{3}}) {
    ASSERT_EQ(expanded[member].size(), 2u) << "site " << member;
    EXPECT_EQ(expanded[member][0].begin, 2u);
    EXPECT_EQ(expanded[member][0].end, 7u);
    EXPECT_EQ(expanded[member][1].begin, 9u);
    EXPECT_EQ(expanded[member][1].end, 12u);
  }
}

constexpr const char kDomainScript[] =
    "local l lx\n"
    "sites 3\n"
    "site 0 r1\n"
    "site 1 r2\n"
    "site 2 r3\n"
    "constraint a\n"
    "panic :- l(X,Y) & r1(Z) & X <= Z & Z <= Y\n"
    "constraint b\n"
    "panic :- l(X,Y) & r2(Z) & X <= Z & Z <= Y\n"
    "constraint c\n"
    "panic :- lx(X) & r3(X)\n"
    "fact r1(1000)\n"
    "fact r2(1000)\n"
    "fact r3(5)\n"
    "insert l(1, 5)\n"
    "insert l(6, 9)\n"
    "insert l(11, 14)\n"
    "insert lx(1)\n";

ResilienceConfig DomainResilience() {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 1;
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.cooldown_ticks = 2;
  return resilience;
}

// The tentpole recovery property: a whole domain dark defers every check
// that touches a member site while the healthy site's checks complete,
// and once the window passes, catch-up recovery fires once per member.
TEST(FailureDomainTest, WholeDomainDarkDefersEveryMemberSiteCheck) {
  auto script = ParseScript(std::string(kDomainScript) +
                            "domain rackA 0 1\n"
                            "domain_outage rackA 0 2\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  options.resilience = DomainResilience();
  // No --fault-* flags: the domain window alone must arm injection.
  ASSERT_FALSE(options.enable_faults);
  auto report = RunScript(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every l update fans out to both member sites and both defer; the
  // lx update only touches the healthy site 2 and applies cleanly.
  EXPECT_EQ(report->updates_deferred, 3u);
  EXPECT_NE(report->log_text.find("DEFER  +l(1, 5) deferred:a deferred:b"),
            std::string::npos)
      << report->log_text;
  EXPECT_NE(report->log_text.find("apply  +lx(1)"), std::string::npos);
  // The shutdown drain lands past the window: everything recovers, and
  // the dark->closed breaker edge fires exactly once per member site.
  EXPECT_EQ(report->deferred_pending, 0u);
  EXPECT_EQ(report->deferred_recovered, 6u);
  EXPECT_EQ(report->deferred_violations, 0u);
  EXPECT_EQ(report->sites_recovered, 2u);
}

// A domain window is sugar for the same window on every member site: the
// expanded run must be byte-identical to one configured member-by-member
// with --site-fault-outage.
TEST(FailureDomainTest, DomainOutageEqualsManualPerSiteWindows) {
  auto domain_script = ParseScript(std::string(kDomainScript) +
                                   "domain rackA 0 1\n"
                                   "domain_outage rackA 0 2\n");
  ASSERT_TRUE(domain_script.ok());
  auto plain_script = ParseScript(kDomainScript);
  ASSERT_TRUE(plain_script.ok());

  ScriptOptions domain_options;
  domain_options.resilience = DomainResilience();
  domain_options.print_stats = true;
  ScriptOptions manual_options = domain_options;
  manual_options.enable_faults = true;
  manual_options.site_faults[0].outages.push_back(OutageWindow{0, 2});
  manual_options.site_faults[1].outages.push_back(OutageWindow{0, 2});

  auto domain_report = RunScript(*domain_script, domain_options);
  auto manual_report = RunScript(*plain_script, manual_options);
  ASSERT_TRUE(domain_report.ok()) << domain_report.status().ToString();
  ASSERT_TRUE(manual_report.ok()) << manual_report.status().ToString();
  EXPECT_EQ(domain_report->text, manual_report->text);
  EXPECT_EQ(domain_report->sites_recovered, manual_report->sites_recovered);
}

TEST(FailureDomainTest, LatencyDrawsAreDeterministicAndBounded) {
  auto run = []() {
    TopologyConfig config;
    config.sites = 2;
    config.placement["a"] = 0;
    SiteDatabase site({"l"}, config);
    CostModel costs;
    costs.latency_model = LatencyModel::kUniform;
    costs.latency_lo_us = 1;
    costs.latency_hi_us = 3;
    costs.latency_seed = 7;
    site.set_site_cost_model(0, costs);
    EXPECT_TRUE(site.db().Insert("a", {V(1)}).ok());
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(site.ReadRemote("a", 1).ok());
    }
    return site.site_latency_ewma_us(0);
  };
  uint64_t ewma = run();
  // Every draw lands in [lo, hi], so the EWMA must too.
  EXPECT_GE(ewma, 1u);
  EXPECT_LE(ewma, 3u);
  // Same seed, fresh instance: the draw sequence (hence the EWMA) is
  // reproduced exactly.
  EXPECT_EQ(ewma, run());
  // Site 1 never took a trip; its EWMA stays at the no-observation 0.
  TopologyConfig config;
  config.sites = 2;
  SiteDatabase site({"l"}, config);
  EXPECT_EQ(site.site_latency_ewma_us(1), 0u);
}

// The default-config guard at the distsim layer: the fixed model consumes
// no latency randomness, so trips leave the EWMA untouched at 0.
TEST(FailureDomainTest, FixedModelConsumesNoLatencyDraws) {
  SiteDatabase site({"l"});
  EXPECT_TRUE(site.db().Insert("a", {V(1)}).ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(site.ReadRemote("a", 1).ok());
  }
  EXPECT_GT(site.stats().remote_trips, 0u);
  EXPECT_EQ(site.site_latency_ewma_us(0), 0u);
}

TEST(FailureDomainTest, HedgeIdentityAndTripBillingAreExact) {
  auto run = []() {
    TopologyConfig config;
    config.sites = 1;
    SiteDatabase site({"l"}, config);
    site.EnableRemoteCache(true);
    CostModel costs;
    costs.latency_model = LatencyModel::kTwoPoint;
    costs.latency_lo_us = 1;
    costs.latency_hi_us = 40;
    costs.latency_slow_share = 0.4;
    costs.latency_seed = 9;
    site.set_site_cost_model(0, costs);
    site.set_hedge(1, nullptr, nullptr, nullptr);
    ThreadPool pool(2);
    size_t logical_trips = 0;
    for (int i = 0; i < 24; ++i) {
      std::string pred = "r" + std::to_string(i);
      EXPECT_TRUE(site.db().Insert(pred, {V(i)}).ok());
      site.PrefetchRemoteBatched({pred}, &pool);
      ++logical_trips;
    }
    HedgeStats hedges = site.hedge_stats();
    // The billing rules, exactly: every issued hedge either won or
    // wasted, and cost one extra physical trip; tuples were fetched once
    // per logical read regardless.
    EXPECT_EQ(hedges.issued, hedges.won + hedges.wasted);
    EXPECT_EQ(site.stats().remote_trips, logical_trips + hedges.issued);
    EXPECT_EQ(site.stats().remote_tuples, logical_trips);
    return hedges;
  };
  HedgeStats first = run();
  // A 40% slow share past 1x EWMA must actually hedge on this schedule.
  EXPECT_GT(first.issued, 0u);
  HedgeStats again = run();
  EXPECT_EQ(first.issued, again.issued);
  EXPECT_EQ(first.won, again.won);
  EXPECT_EQ(first.wasted, again.wasted);
}

// Latency-aware degradation extends refuse-before-pay: once the site's
// EWMA says the trip cannot finish inside the remaining episode budget,
// the check is shed to kDeferred without paying the trip.
TEST(FailureDomainTest, LatencyShedRefusesBeforePayingTheTrip) {
  CostModel costs;
  costs.latency_model = LatencyModel::kUniform;
  costs.latency_lo_us = 20000;  // every trip simulates 20ms
  costs.latency_hi_us = 20000;
  BudgetConfig budget;
  budget.per_episode.deadline_ms = 5;
  ConstraintManager mgr({"l"}, costs, ResilienceConfig{}, ParallelConfig{},
                        RemoteCacheConfig{}, budget);
  ASSERT_TRUE(mgr.AddConstraint(
                     "fi",
                     MustParse("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y"))
                  .ok());
  ASSERT_TRUE(mgr.site().db().Insert("r", {V(1000)}).ok());

  // First episode: no EWMA yet, so the episode prefetch pays the
  // (budget-busting) trip and the manager learns the latency; with the
  // deadline already blown by that sleep, the check itself is then shed
  // with the latency label.
  ASSERT_TRUE(mgr.ApplyUpdate(Update::Insert("l", {V(1), V(3)})).ok());
  ASSERT_GE(mgr.site().site_latency_ewma_us(0), 15000u);
  size_t trips_after_first = mgr.stats().access.remote_trips;
  ASSERT_GE(trips_after_first, 1u);

  // Second episode: 20ms projected against a 5ms deadline — shed through
  // the kResourceExhausted path without paying another trip.
  auto reports = mgr.ApplyUpdate(Update::Insert("l", {V(10), V(13)}));
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  bool shed_seen = false;
  for (const CheckReport& r : *reports) {
    if (r.constraint != "fi") continue;
    EXPECT_EQ(r.outcome, Outcome::kDeferred);
    EXPECT_EQ(r.reason, StatusCode::kResourceExhausted);
    shed_seen = true;
  }
  EXPECT_TRUE(shed_seen);
  ManagerStats stats = mgr.stats();
  EXPECT_GE(stats.latency_shed, 1u);
  // The labeled counter is a subset of the budget shed total, and the
  // refused second episode paid no further trip.
  EXPECT_GE(stats.shed_checks, stats.latency_shed);
  EXPECT_EQ(stats.access.remote_trips, trips_after_first);
}

// Hedging is a latency optimization, not a semantic change: the per-update
// log is byte-identical hedged or not; only the trip accounting and the
// hedge counters move.
TEST(FailureDomainTest, HedgingIsSemanticallyInvisibleOnTheLog) {
  // Two sites: hedging lives in the batched multi-site prefetch, and the
  // stock churn forces a fresh trip per episode so the EWMA has draws to
  // overshoot.
  const char* text =
      "local reserved\n"
      "sites 2\n"
      "site 0 stock\n"
      "constraint stock\n"
      "panic :- reserved(I,N) & not stock(I,N)\n"
      "fact stock(a, 1)\n"
      "insert reserved(a, 1)\n"
      "insert stock(b, 1)\n"
      "insert reserved(b, 1)\n"
      "insert stock(c, 1)\n"
      "insert reserved(c, 1)\n"
      "insert stock(d, 1)\n"
      "insert reserved(d, 1)\n"
      "insert stock(e, 1)\n"
      "insert reserved(e, 1)\n"
      "insert stock(f, 1)\n"
      "insert reserved(f, 1)\n"
      "insert stock(g, 1)\n"
      "insert reserved(g, 1)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ScriptOptions options;
  SiteLatencyOverride skewed;
  skewed.model = LatencyModel::kTwoPoint;
  skewed.lo_us = 1;
  skewed.hi_us = 50;
  skewed.slow_share = 0.4;
  options.topology.site_latency[0] = skewed;
  options.site_latency_from_flags = true;

  auto unhedged = RunScript(*script, options);
  options.remote_cache.hedge_after = 1;
  options.hedge_from_flags = true;
  auto hedged = RunScript(*script, options);
  ASSERT_TRUE(unhedged.ok()) << unhedged.status().ToString();
  ASSERT_TRUE(hedged.ok()) << hedged.status().ToString();

  EXPECT_EQ(unhedged->log_text, hedged->log_text);
  EXPECT_EQ(unhedged->violations, hedged->violations);
  EXPECT_EQ(unhedged->updates_applied, hedged->updates_applied);
  EXPECT_EQ(unhedged->hedges_issued, 0u);
  EXPECT_GT(hedged->hedges_issued, 0u);
  EXPECT_EQ(hedged->hedges_issued,
            hedged->hedges_won + hedged->hedges_wasted);
}

// Metric-catalog byte-identity: the latency histogram, hedge counters and
// latency-shed counter register only when their feature is configured, so
// a default run's metrics dump is unchanged by this PR.
TEST(FailureDomainTest, LatencyMetricsRegisterOnlyWhenArmed) {
  const char* text =
      "local l\n"
      "constraint fi\n"
      "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y\n"
      "fact r(1000)\n"
      "insert l(1, 3)\n";
  auto script = ParseScript(text);
  ASSERT_TRUE(script.ok());
  ScriptOptions options;
  options.collect_metrics = true;
  auto plain = RunScript(*script, options);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->metrics_json.find("latency_us"), std::string::npos);
  EXPECT_EQ(plain->metrics_json.find("manager.hedge"), std::string::npos);
  EXPECT_EQ(plain->metrics_json.find("manager.latency_shed"),
            std::string::npos);

  SiteLatencyOverride uniform;
  uniform.model = LatencyModel::kUniform;
  uniform.lo_us = 1;
  uniform.hi_us = 2;
  options.topology.site_latency[0] = uniform;
  options.site_latency_from_flags = true;
  options.remote_cache.hedge_after = 2;
  options.hedge_from_flags = true;
  auto armed = RunScript(*script, options);
  ASSERT_TRUE(armed.ok());
  EXPECT_NE(armed->metrics_json.find("distsim.site0.latency_us"),
            std::string::npos);
  EXPECT_NE(armed->metrics_json.find("manager.hedge.issued"),
            std::string::npos);
  EXPECT_NE(armed->metrics_json.find("manager.latency_shed"),
            std::string::npos);
}

}  // namespace
}  // namespace ccpi
