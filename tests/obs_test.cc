#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccpi {
namespace obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonTest, AppendAddsQuotes) {
  std::string out = "x: ";
  AppendJsonString("he said \"hi\"", &out);
  EXPECT_EQ(out, "x: \"he said \\\"hi\\\"\"");
}

TEST(JsonTest, NumbersClampNonFinite) {
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  EXPECT_EQ(JsonNumber(0.0 / 0.0), "0");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "0");
}

// ------------------------------------------------------------- counters

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

// ----------------------------------------------------------- histograms

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({10, 20, 40});
  // Exactly on a bound lands in that bound's bucket; above every bound
  // lands in the overflow bucket.
  h.Observe(0);
  h.Observe(10);   // first bucket (<= 10)
  h.Observe(11);   // second bucket
  h.Observe(20);   // second bucket (<= 20)
  h.Observe(21);   // third bucket
  h.Observe(40);   // third bucket (<= 40)
  h.Observe(41);   // overflow
  h.Observe(1000); // overflow
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);  // 0, 10
  EXPECT_EQ(snap.bucket_counts[1], 2u);  // 11, 20
  EXPECT_EQ(snap.bucket_counts[2], 2u);  // 21, 40
  EXPECT_EQ(snap.bucket_counts[3], 2u);  // 41, 1000
  EXPECT_EQ(snap.count, 8u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 20 + 21 + 40 + 41 + 1000);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  Histogram h({100});
  // 100 observations spread uniformly through the first bucket.
  for (uint64_t i = 0; i < 100; ++i) h.Observe(i);
  HistogramSnapshot snap = h.Snapshot();
  // p50's rank-50 observation sits halfway through the [0, 100] bucket.
  EXPECT_NEAR(snap.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(snap.Quantile(0.99), 99.0, 1.0);
  // Quantiles never exceed the recorded max.
  EXPECT_LE(snap.Quantile(1.0), 100.0);
}

TEST(HistogramTest, QuantileOfOverflowBucketUsesObservedMax) {
  Histogram h({10});
  h.Observe(500);
  h.Observe(900);
  HistogramSnapshot snap = h.Snapshot();
  double p99 = snap.Quantile(0.99);
  EXPECT_GE(p99, 10.0);
  EXPECT_LE(p99, 900.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
}

TEST(HistogramTest, DefaultBoundsAreAscending) {
  const std::vector<uint64_t>& bounds = Histogram::DefaultLatencyBoundsNs();
  ASSERT_GT(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.GetCounter("x.count")->value(), 3u);
  EXPECT_NE(registry.GetCounter("y.count"), a);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  c->Add(5);
  g->Set(5);
  h->Observe(5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(MetricsRegistryTest, ToJsonHasAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("checks.total")->Add(7);
  registry.GetGauge("queue.len")->Set(-2);
  Histogram* h = registry.GetHistogram("lat", {10, 20});
  h->Observe(5);
  h->Observe(15);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"checks.total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"queue.len\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);  // overflow bucket
}

// --------------------------------------------------------------- timing

TEST(StopwatchTest, InertWhenTimingDisabled) {
  SetTimingEnabled(false);
  Histogram h;
  Stopwatch sw;
  EXPECT_FALSE(sw.running());
  sw.RecordTo(&h);
  EXPECT_EQ(h.count(), 0u);
}

TEST(StopwatchTest, RecordsWhenTimingEnabled) {
  SetTimingEnabled(true);
  Histogram h;
  Stopwatch sw;
  EXPECT_TRUE(sw.running());
  sw.RecordTo(&h);
  EXPECT_EQ(h.count(), 1u);
  SetTimingEnabled(false);
}

// -------------------------------------------------------------- tracing

TEST(SpanTest, InertWithoutRecorder) {
  ASSERT_EQ(TraceRecorder::current(), nullptr);
  Span span("noop");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(Span::CurrentDepth(), 0);
}

TEST(SpanTest, RecordsNestingDepthAndOrder) {
  TraceRecorder recorder;
  recorder.Install();
  {
    Span outer("outer");
    EXPECT_EQ(Span::CurrentDepth(), 1);
    EXPECT_EQ(Span::CurrentName(), "outer");
    {
      Span inner("inner", "cat2");
      EXPECT_EQ(Span::CurrentDepth(), 2);
      EXPECT_EQ(Span::CurrentName(), "inner");
    }
    EXPECT_EQ(Span::CurrentDepth(), 1);
  }
  recorder.Uninstall();
  std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].category, "cat2");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  // The outer span brackets the inner one.
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_GE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
}

TEST(SpanTest, AttributesAreEscapedInChromeJson) {
  TraceRecorder recorder;
  recorder.Install();
  {
    Span span("check");
    span.Attr("pred", "weird\"name\nwith\\stuff");
    span.Attr("tuples", static_cast<int64_t>(42));
  }
  recorder.Uninstall();
  std::string json = recorder.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pred\": \"weird\\\"name\\nwith\\\\stuff\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tuples\": 42"), std::string::npos);
  // No raw newline may survive inside a string value.
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

TEST(SpanTest, UninstallStopsRecording) {
  TraceRecorder recorder;
  recorder.Install();
  { Span span("kept"); }
  recorder.Uninstall();
  { Span span("dropped"); }
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(SpanTest, InstallingSecondRecorderWins) {
  TraceRecorder first;
  first.Install();
  {
    TraceRecorder second;
    second.Install();
    { Span span("to-second"); }
    EXPECT_EQ(second.size(), 1u);
    EXPECT_EQ(first.size(), 0u);
    // first.Uninstall() must not detach second (it is not installed).
    first.Uninstall();
    EXPECT_EQ(TraceRecorder::current(), &second);
  }
  // second's destructor uninstalled it.
  EXPECT_EQ(TraceRecorder::current(), nullptr);
}

TEST(TraceRecorderTest, WriteChromeJsonRoundTrips) {
  TraceRecorder recorder;
  recorder.Install();
  { Span span("io"); }
  recorder.Uninstall();
  std::string path = testing::TempDir() + "/ccpi_trace_test.json";
  ASSERT_TRUE(recorder.WriteChromeJson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), recorder.ToChromeJson());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace ccpi
