// Ablation: the evaluation-engine design choices DESIGN.md calls out —
// semi-naive vs naive fixpoint iteration, and index-probed vs scan-only
// joins — measured on the two recursive workloads the library leans on
// (transitive closure for Example 2.4-style constraints, interval merging
// for the Fig 6.1 programs).

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>

#include "core/icq_compiler.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program TcProgram() {
  auto p = ParseProgram(
      "tc(X,Y) :- e(X,Y)\n"
      "tc(X,Y) :- tc(X,Z) & e(Z,Y)\n");
  CCPI_CHECK(p.ok());
  Program program = *p;
  program.goal = "tc";
  return program;
}

Database ChainDb(size_t n) {
  Database db;
  for (size_t i = 0; i < n; ++i) {
    CCPI_CHECK(db.Insert("e", {V(static_cast<int64_t>(i)),
                               V(static_cast<int64_t>(i + 1))})
                   .ok());
  }
  return db;
}

void RunTc(benchmark::State& state, bool seminaive, bool index) {
  size_t n = static_cast<size_t>(state.range(0));
  Program program = TcProgram();
  Database db = ChainDb(n);
  EvalOptions options;
  options.use_seminaive = seminaive;
  options.use_index = index;
  for (auto _ : state) {
    auto rel = EvaluateGoal(program, db, options);
    CCPI_CHECK(rel.ok());
    CCPI_CHECK(rel->size() == n * (n + 1) / 2);
    benchmark::DoNotOptimize(rel->size());
  }
  state.counters["edges"] = static_cast<double>(n);
}

void BM_Tc_Seminaive_Indexed(benchmark::State& state) {
  RunTc(state, true, true);
}
BENCHMARK(BM_Tc_Seminaive_Indexed)->RangeMultiplier(2)->Range(8, 64);

void BM_Tc_Naive_Indexed(benchmark::State& state) {
  RunTc(state, false, true);
}
BENCHMARK(BM_Tc_Naive_Indexed)->RangeMultiplier(2)->Range(8, 64);

void BM_Tc_Seminaive_NoIndex(benchmark::State& state) {
  RunTc(state, true, false);
}
BENCHMARK(BM_Tc_Seminaive_NoIndex)->RangeMultiplier(2)->Range(8, 64);

void BM_Tc_Naive_NoIndex(benchmark::State& state) {
  RunTc(state, false, false);
}
BENCHMARK(BM_Tc_Naive_NoIndex)->RangeMultiplier(2)->Range(8, 32);

void RunFig61(benchmark::State& state, bool seminaive, bool index) {
  size_t n = static_cast<size_t>(state.range(0));
  auto rule = ParseRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y");
  CCPI_CHECK(rule.ok());
  auto comp = CompileIcq(*rule, "l");
  CCPI_CHECK(comp.ok());
  Database db;
  for (size_t i = 0; i < n; ++i) {
    CCPI_CHECK(db.Insert("l", {V(static_cast<int64_t>(2 * i)),
                               V(static_cast<int64_t>(2 * i + 3))})
                   .ok());
  }
  // Evaluate the interval program directly (without the ok-rules) under
  // the chosen engine configuration.
  Program program = comp->interval_program;
  program.goal = "fi_int_cc";
  EvalOptions options;
  options.use_seminaive = seminaive;
  options.use_index = index;
  for (auto _ : state) {
    auto idb = Evaluate(program, db, options);
    CCPI_CHECK(idb.ok());
    benchmark::DoNotOptimize(idb->TotalTuples());
  }
  state.counters["|L|"] = static_cast<double>(n);
}

void BM_Fig61_Seminaive(benchmark::State& state) {
  RunFig61(state, true, true);
}
BENCHMARK(BM_Fig61_Seminaive)->RangeMultiplier(2)->Range(4, 16);

void BM_Fig61_Naive(benchmark::State& state) { RunFig61(state, false, true); }
BENCHMARK(BM_Fig61_Naive)->RangeMultiplier(2)->Range(4, 16);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  std::printf(
      "=== Ablation: evaluation-engine design choices ===\n"
      "semi-naive deltas and index probes, on transitive closure and the\n"
      "Fig 6.1 interval programs. All configurations derive identical\n"
      "results (asserted); only cost differs.\n\n");
  ccpi::bench::Harness harness("eval_ablation");
  return harness.RunAndWrite(argc, argv);
}
