// Experiment THM-3.1/3.2: constraint subsumption as program containment.
// Section 3 observes the problem is NP-complete for CQs, "but since
// constraints tend to be short, the exponential complexity may not present
// a bar to solution". The benchmarks quantify that: containment-mapping
// search on self-join-heavy constraints (the exponential core) and the
// redundant-constraint sweep a manager runs at registration time.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "subsumption/reduction.h"
#include "subsumption/subsumption.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

/// A chain query over a single binary predicate: panic :- e(X0,X1) &
/// e(X1,X2) & ... (n atoms). Self-joins maximize candidate mappings.
Program ChainConstraint(int atoms) {
  std::string body;
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) body += " & ";
    body += "e(X" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
  }
  auto p = ParseProgram("panic :- " + body);
  CCPI_CHECK(p.ok());
  return *p;
}

/// A cycle query: panic :- e(X0,X1) & ... & e(Xn-1,X0).
Program CycleConstraint(int atoms) {
  std::string body;
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) body += " & ";
    body += "e(X" + std::to_string(i) + ",X" +
            std::to_string((i + 1) % atoms) + ")";
  }
  auto p = ParseProgram("panic :- " + body);
  CCPI_CHECK(p.ok());
  return *p;
}

void PrintSubsumptionTable() {
  std::printf(
      "=== THM 3.1: subsumption verdicts on chain/cycle families ===\n"
      "%-26s %-26s %s\n", "subsumed?", "by", "verdict");
  struct Row {
    Program c;
    Program other;
    const char* label_c;
    const char* label_o;
  };
  std::vector<Row> rows = {
      {ChainConstraint(4), ChainConstraint(2), "chain-4", "chain-2"},
      {ChainConstraint(2), ChainConstraint(4), "chain-2", "chain-4"},
      {CycleConstraint(4), ChainConstraint(3), "cycle-4", "chain-3"},
      {CycleConstraint(3), CycleConstraint(6), "cycle-3", "cycle-6"},
      {CycleConstraint(6), CycleConstraint(3), "cycle-6", "cycle-3"},
  };
  for (const Row& row : rows) {
    auto d = Subsumes(row.c, {row.other});
    CCPI_CHECK(d.ok());
    std::printf("%-26s %-26s %s (%s)\n", row.label_c, row.label_o,
                d->outcome == Outcome::kHolds ? "subsumed" : "not subsumed",
                d->method.c_str());
  }
  std::printf(
      "\n(cycle-3 is subsumed by cycle-6 — the 6-cycle query maps onto the\n"
      "3-cycle by wrapping around twice; the converse fails — the classic\n"
      "homomorphism asymmetry.)\n\n");
}

void BM_ChainInChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program big = ChainConstraint(n);
  Program small = ChainConstraint(2);
  for (auto _ : state) {
    auto d = Subsumes(big, {small});
    CCPI_CHECK(d.ok());
    benchmark::DoNotOptimize(d->outcome);
  }
  state.counters["atoms"] = n;
}
BENCHMARK(BM_ChainInChain)->RangeMultiplier(2)->Range(2, 32);

void BM_CycleInCycle(benchmark::State& state) {
  // cycle-k is subsumed by cycle-2k (the containment mapping wraps the
  // 2k-cycle around the k-cycle twice): the mapping search explores a
  // k^(2k) candidate space, heavily pruned by the backtracking.
  int k = static_cast<int>(state.range(0));
  Program subsumed = CycleConstraint(k);
  Program subsuming = CycleConstraint(2 * k);
  for (auto _ : state) {
    auto d = Subsumes(subsumed, {subsuming});
    CCPI_CHECK(d.ok());
    CCPI_CHECK(d->outcome == Outcome::kHolds);
    benchmark::DoNotOptimize(d->outcome);
  }
  state.counters["cycle"] = k;
}
BENCHMARK(BM_CycleInCycle)->DenseRange(2, 7);

void BM_RegistrationSweep(benchmark::State& state) {
  // FindRedundantConstraints over a pile of generated constraints: the
  // manager's registration-time pass.
  int count = static_cast<int>(state.range(0));
  Rng rng(9);
  std::vector<Program> constraints;
  for (int i = 0; i < count; ++i) {
    int len = 1 + static_cast<int>(rng.Below(3));
    constraints.push_back(ChainConstraint(len));
  }
  for (auto _ : state) {
    auto redundant = FindRedundantConstraints(constraints);
    CCPI_CHECK(redundant.ok());
    benchmark::DoNotOptimize(redundant->size());
  }
  state.counters["constraints"] = count;
}
BENCHMARK(BM_RegistrationSweep)->RangeMultiplier(2)->Range(4, 32);

void BM_Theorem32Reduction(benchmark::State& state) {
  auto q = ParseRule("ans(X) :- e(X,Y) & e(Y,Z)");
  auto r = ParseRule("ans(X) :- e(X,Y)");
  CQ cq = RuleToCQ(*q);
  CQ cr = RuleToCQ(*r);
  for (auto _ : state) {
    auto [qp, rp] = ReducePairToSubsumption(cq, cr);
    auto d = Subsumes(qp, {rp});
    CCPI_CHECK(d.ok() && d->outcome == Outcome::kHolds);
    benchmark::DoNotOptimize(d->outcome);
  }
}
BENCHMARK(BM_Theorem32Reduction);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintSubsumptionTable();
  ccpi::bench::Harness harness("subsumption");
  return harness.RunAndWrite(argc, argv);
}
