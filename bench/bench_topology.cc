// Experiment TOPOLOGY: N-site sharded distsim. Two sweeps reproduce the
// headline properties of the per-site fault-domain design:
//
//  * BATCH — a healthy run whose tier-3 worklist needs four remote
//    relations. With one site the prefetch pays one trip per relation;
//    with N sites the relations coalesce into one batched round trip per
//    site, so the per-episode trip count drops as relations share a site.
//
//  * OUTAGE — a scripted outage-then-return per site, either aligned
//    across sites (correlation 1: every site dark in the same trip
//    window) or staggered (correlation 0). Checks touching only healthy
//    sites keep completing (partial degradation), deferred entries drain
//    once their site returns, the recovery pass revalidates poisoned
//    cache entries, and nothing stays pending.
//
// The timed benchmarks compare per-update latency of the single-site
// baseline against a 4-site topology with batched concurrent prefetch.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "datalog/parser.h"
#include "distsim/fault_injector.h"
#include "distsim/topology.h"
#include "manager/constraint_manager.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

constexpr size_t kRemoteRelations = 4;

TopologyConfig MakeTopology(size_t sites) {
  TopologyConfig topology;
  topology.sites = sites;
  for (size_t k = 0; k < kRemoteRelations; ++k) {
    topology.placement["order" + std::to_string(k)] = k % sites;
  }
  return topology;
}

std::unique_ptr<ConstraintManager> MakeManager(size_t sites,
                                               ResilienceConfig resilience,
                                               size_t threads = 1,
                                               bool with_audit = false) {
  ParallelConfig parallel;
  parallel.threads = threads;
  TopologyConfig topology = MakeTopology(sites);
  if (with_audit) topology.placement["audit"] = 0;
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"reserved", "logged"}, CostModel{}, resilience,
      parallel, RemoteCacheConfig{}, BudgetConfig{}, std::move(topology));
  for (size_t k = 0; k < kRemoteRelations; ++k) {
    std::string rel = "order" + std::to_string(k);
    CCPI_CHECK(mgr->AddConstraint(
                      "no-order" + std::to_string(k),
                      *ParseProgram("panic :- reserved(P,Lo,Hi) & " + rel +
                                    "(P,Q) & Lo <= Q & Q <= Hi"))
                   .ok());
  }
  if (with_audit) {
    // Checked only on `logged` updates, which the outage stream stops
    // issuing early: its cache entry is poisoned during site 0's outage
    // and nothing refetches it organically, so only the recovery pass's
    // reconciliation can revalidate it.
    CCPI_CHECK(
        mgr->AddConstraint("no-flagged-audit",
                           *ParseProgram("panic :- logged(X) & audit(X)"))
            .ok());
  }
  return mgr;
}

void Seed(ConstraintManager* mgr) {
  Rng rng(17);
  for (size_t k = 0; k < kRemoteRelations; ++k) {
    std::string rel = "order" + std::to_string(k);
    for (int i = 0; i < 50; ++i) {
      CCPI_CHECK(mgr->site()
                     .db()
                     .Insert(rel, {V("p" + std::to_string(rng.Below(3))),
                                   V(rng.Range(500, 1000))})
                     .ok());
    }
  }
}

/// Risky reservations only: every update needs all four remote relations,
/// so every tier-3 episode touches every site of the topology.
std::vector<Update> MakeStream(size_t count, Rng* rng) {
  std::vector<Update> stream;
  for (size_t i = 0; i < count; ++i) {
    int64_t lo = rng->Range(0, 300);
    stream.push_back(Update::Insert(
        "reserved", {V("p" + std::to_string(rng->Below(3))), V(lo),
                     V(lo + rng->Range(0, 50))}));
  }
  return stream;
}

void PrintBatchTable(bench::Harness* harness) {
  std::printf(
      "=== TOPOLOGY-BATCH: 40 updates, 4 remote relations, healthy ===\n");
  std::printf("%-8s %6s %7s %7s %9s\n", "sites", "trips", "hits",
              "tuples", "cost");
  for (size_t sites : {size_t{1}, size_t{2}, size_t{4}}) {
    auto mgr = MakeManager(sites, ResilienceConfig{});
    Seed(mgr.get());
    Rng rng(99);
    for (const Update& u : MakeStream(40, &rng)) {
      CCPI_CHECK(mgr->ApplyUpdate(u).ok());
    }
    const AccessStats stats = mgr->site().stats();
    std::printf("%-8zu %6zu %7zu %7zu %9.1f\n", sites, stats.remote_trips,
                stats.cache_hits, stats.remote_tuples,
                stats.Cost(CostModel{}));
    harness->Sweep("topology/batch/s" + std::to_string(sites),
                   {{"sites", static_cast<double>(sites)},
                    {"remote_trips", static_cast<double>(stats.remote_trips)},
                    {"cache_hits", static_cast<double>(stats.cache_hits)},
                    {"remote_tuples",
                     static_cast<double>(stats.remote_tuples)},
                    {"cost", stats.Cost(CostModel{})}});
  }
  std::printf("\n");
}

struct OutageRow {
  size_t sites = 0;
  int correlation = 0;
  size_t deferred = 0;
  size_t fast_fails = 0;
  size_t recovered = 0;
  size_t late_violations = 0;
  size_t sites_recovered = 0;
  size_t revalidated = 0;
  size_t pending = 0;
  /// Updates where some tier-3 checks completed while others deferred —
  /// the partial-degradation signature of per-site fault domains. (A
  /// 1-site run can show a few too, at outage edges where one episode
  /// succeeds before a later one trips the breaker.)
  size_t partial_updates = 0;
  /// Updates where every tier-3 check deferred.
  size_t blocked_updates = 0;
};

OutageRow RunOutage(size_t sites, int correlation) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 2;
  resilience.breaker.failure_threshold = 2;
  resilience.breaker.cooldown_ticks = 2;
  auto mgr = MakeManager(sites, resilience, /*threads=*/1,
                         /*with_audit=*/true);
  Seed(mgr.get());
  for (int i = 0; i < 5; ++i) {
    CCPI_CHECK(mgr->site()
                   .db()
                   .Insert("audit", {V("x" + std::to_string(i))})
                   .ok());
  }

  // One injector per site. Correlated: every site is dark for its trips
  // [4, 10). Staggered: site s is dark for its trips [4+6s, 10+6s), so at
  // most one fault domain is down at a time and checks pinned to the
  // others keep completing.
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  for (size_t s = 0; s < sites; ++s) {
    FaultConfig faults;
    faults.seed = 11 + s;
    uint64_t begin = correlation == 1 ? 4 : 4 + 6 * s;
    faults.outages.push_back(OutageWindow{begin, begin + 6});
    injectors.push_back(std::make_unique<FaultInjector>(faults));
    mgr->site().set_site_fault_injector(s, injectors.back().get());
  }

  OutageRow row;
  Rng rng(99);
  std::vector<Update> stream = MakeStream(60, &rng);
  // A scripted poison orphan: the first `logged` insert fills the audit
  // cache entry; the second reads it while audit alone is forced down
  // (ForcePredOutage below), fails, poisons the entry, and defers; the
  // immediate inverse delete then supersedes the deferred check (the
  // queue drops it as moot), so no drain ever refetches audit — only the
  // recovery pass's reconciliation can revalidate the poisoned entry.
  stream[0] = Update::Insert("logged", {V("seed")});
  stream[2] = Update::Insert("logged", {V("probe")});
  stream[3] = Update::Delete("logged", {V("probe")});
  for (size_t i = 0; i < stream.size(); ++i) {
    const Update& u = stream[i];
    injectors[0]->ForcePredOutage("audit", i == 2);
    auto reports = mgr->ApplyUpdate(u);
    CCPI_CHECK(reports.ok());
    size_t full = 0, deferred = 0;
    for (const CheckReport& c : *reports) {
      if (c.outcome == Outcome::kDeferred) ++deferred;
      if (c.tier == Tier::kFullCheck && c.outcome != Outcome::kDeferred &&
          c.outcome != Outcome::kUnknown) {
        ++full;
      }
    }
    if (deferred > 0 && full > 0) ++row.partial_updates;
    if (deferred > 0 && full == 0) ++row.blocked_updates;
  }

  // Shutdown drain with the injectors still attached: the outage windows
  // are finite, so the drain's own trips walk each site past its window
  // and the queue empties on the healed schedule.
  for (int idle = 0; !mgr->deferred_queue().empty() && idle < 10;) {
    mgr->TickBreaker(resilience.breaker.cooldown_ticks + 1);
    auto late = mgr->RecheckDeferred();
    CCPI_CHECK(late.ok());
    idle = late->empty() ? idle + 1 : 0;
  }

  const ManagerStats stats = mgr->stats();
  row.sites = sites;
  row.correlation = correlation;
  row.deferred = stats.deferred;
  row.fast_fails = stats.breaker_fast_fails;
  row.recovered = stats.deferred_recovered;
  row.late_violations = stats.deferred_violations;
  row.sites_recovered = stats.sites_recovered;
  row.revalidated = stats.cache_revalidated;
  row.pending = mgr->deferred_queue().size();
  return row;
}

void PrintOutageTable(bench::Harness* harness) {
  std::printf(
      "=== TOPOLOGY-OUTAGE: 60 updates, scripted outage-then-return ===\n");
  std::printf("%-6s %5s %6s %9s %6s %5s %6s %7s %7s %8s %8s\n", "sites",
              "corr", "defer", "fastfail", "recov", "late", "sitesR",
              "revalid", "pending", "partial", "blocked");
  std::vector<OutageRow> rows;
  for (size_t sites : {size_t{1}, size_t{2}, size_t{4}}) {
    for (int correlation : {0, 1}) {
      rows.push_back(RunOutage(sites, correlation));
    }
  }
  for (const OutageRow& r : rows) {
    std::printf("%-6zu %5d %6zu %9zu %6zu %5zu %6zu %7zu %7zu %8zu %8zu\n",
                r.sites, r.correlation, r.deferred, r.fast_fails,
                r.recovered, r.late_violations, r.sites_recovered,
                r.revalidated, r.pending, r.partial_updates,
                r.blocked_updates);
    harness->Sweep(
        "topology/outage/s" + std::to_string(r.sites) + "/c" +
            std::to_string(r.correlation),
        {{"sites", static_cast<double>(r.sites)},
         {"correlation", static_cast<double>(r.correlation)},
         {"deferred", static_cast<double>(r.deferred)},
         {"fast_fails", static_cast<double>(r.fast_fails)},
         {"recovered", static_cast<double>(r.recovered)},
         {"late_violations", static_cast<double>(r.late_violations)},
         {"sites_recovered", static_cast<double>(r.sites_recovered)},
         {"revalidated", static_cast<double>(r.revalidated)},
         {"pending", static_cast<double>(r.pending)},
         {"partial_updates", static_cast<double>(r.partial_updates)},
         {"blocked_updates", static_cast<double>(r.blocked_updates)}});
  }
  for (const OutageRow& r : rows) {
    // The recovery protocol's contract: every deferred check resolves by
    // shutdown, and with N sites each outage ends in an observed
    // site-recovery event (the 1-site breaker reports none — recovery
    // metrics are a multi-site concept). Staggered multi-site outages
    // must show partial degradation: updates where the checks of healthy
    // sites completed while the dark site's deferred.
    CCPI_CHECK(r.pending == 0);
    // <= not ==: the scripted inverse delete supersedes one deferred
    // check, which is then dropped as moot rather than resolved.
    CCPI_CHECK(r.recovered + r.late_violations <= r.deferred);
    if (r.sites > 1) {
      CCPI_CHECK(r.sites_recovered > 0);
      // The orphaned poisoned entry is reconciled by the recovery pass.
      CCPI_CHECK(r.revalidated > 0);
    }
    if (r.sites == 1) CCPI_CHECK(r.sites_recovered == 0);
    if (r.sites > 1 && r.correlation == 0) {
      CCPI_CHECK(r.partial_updates > 0);
    }
  }
  std::printf("\n");
}

// ---- LATENCY: per-site latency skew and hedged batched reads -------------
//
// Four sites, all cheap-and-steady except site 0, whose two-point latency
// distribution has a heavy slow tail. The stream churns site 0's relation
// before every reservation so each episode pays a fresh batched trip to
// it (the other sites stay cache-warm and contribute no latency). With
// hedging off the per-episode p99 tracks the slow tail; with
// --hedge-after=3 a backup trip is issued whenever the primary draw
// overshoots 3x the site's EWMA, and the episode completes at
// threshold + backup instead — the p99 collapses while every issued
// hedge is billed exactly one extra trip.

struct LatencyRow {
  std::string name;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  size_t trips = 0;
  size_t issued = 0;
  size_t won = 0;
  size_t wasted = 0;
};

uint64_t Percentile(std::vector<uint64_t>* sorted_us, double p) {
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_us->size()));
  if (idx >= sorted_us->size()) idx = sorted_us->size() - 1;
  return (*sorted_us)[idx];
}

LatencyRow RunLatency(const std::string& name, bool skew,
                      uint64_t hedge_after) {
  constexpr size_t kSites = 4;
  constexpr size_t kEpisodes = 120;
  ParallelConfig parallel;
  parallel.threads = 4;
  RemoteCacheConfig remote_cache;
  remote_cache.hedge_after = hedge_after;
  TopologyConfig topology = MakeTopology(kSites);
  for (size_t s = 0; s < kSites; ++s) {
    SiteLatencyOverride o;
    if (skew && s == 0) {
      // Mostly 200us, but 10% of trips take 20ms — the hedgeable tail.
      o.model = LatencyModel::kTwoPoint;
      o.lo_us = 200;
      o.hi_us = 20000;
      o.slow_share = 0.1;
    } else {
      o.model = LatencyModel::kFixed;
      o.fixed_us = skew ? 200 : 0;
    }
    topology.site_latency[s] = o;
  }
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"reserved", "logged"}, CostModel{},
      ResilienceConfig{}, parallel, remote_cache, BudgetConfig{},
      std::move(topology));
  for (size_t k = 0; k < kRemoteRelations; ++k) {
    std::string rel = "order" + std::to_string(k);
    CCPI_CHECK(mgr->AddConstraint(
                      "no-order" + std::to_string(k),
                      *ParseProgram("panic :- reserved(P,Lo,Hi) & " + rel +
                                    "(P,Q) & Lo <= Q & Q <= Hi"))
                   .ok());
  }
  Seed(mgr.get());

  Rng rng(99);
  std::vector<Update> stream = MakeStream(kEpisodes, &rng);
  std::vector<uint64_t> episode_us;
  episode_us.reserve(stream.size());
  int64_t churn = 10000;
  for (const Update& u : stream) {
    // Invalidate site 0's cache entry so the next episode's batched
    // prefetch pays a fresh (possibly slow-tailed) trip to it.
    CCPI_CHECK(
        mgr->site().db().Insert("order0", {V("px"), V(churn++)}).ok());
    auto start = std::chrono::steady_clock::now();
    auto reports = mgr->ApplyUpdate(u);
    auto stop = std::chrono::steady_clock::now();
    CCPI_CHECK(reports.ok());
    episode_us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
            .count()));
  }

  LatencyRow row;
  row.name = name;
  row.p50_us = Percentile(&episode_us, 0.50);
  row.p99_us = Percentile(&episode_us, 0.99);
  row.trips = mgr->site().stats().remote_trips;
  const ManagerStats stats = mgr->stats();
  row.issued = stats.hedges_issued;
  row.won = stats.hedges_won;
  row.wasted = stats.hedges_wasted;
  return row;
}

void PrintLatencyTable(bench::Harness* harness) {
  std::printf(
      "=== TOPOLOGY-LATENCY: 120 updates, 4 sites, site 0 slow-tailed "
      "===\n");
  std::printf("%-22s %8s %8s %6s %7s %5s %7s\n", "config", "p50us",
              "p99us", "trips", "hedges", "won", "wasted");
  std::vector<LatencyRow> rows;
  rows.push_back(RunLatency("neutral", /*skew=*/false, /*hedge_after=*/0));
  rows.push_back(RunLatency("skew/unhedged", /*skew=*/true,
                            /*hedge_after=*/0));
  rows.push_back(RunLatency("skew/hedged", /*skew=*/true,
                            /*hedge_after=*/3));
  for (const LatencyRow& r : rows) {
    std::printf("%-22s %8zu %8zu %6zu %7zu %5zu %7zu\n", r.name.c_str(),
                static_cast<size_t>(r.p50_us), static_cast<size_t>(r.p99_us),
                r.trips, r.issued, r.won, r.wasted);
    harness->Sweep("topology/latency/s4/" + r.name,
                   {{"p50_us", static_cast<double>(r.p50_us)},
                    {"p99_us", static_cast<double>(r.p99_us)},
                    {"remote_trips", static_cast<double>(r.trips)},
                    {"hedges_issued", static_cast<double>(r.issued)},
                    {"hedges_won", static_cast<double>(r.won)},
                    {"hedges_wasted", static_cast<double>(r.wasted)}});
  }
  // The contract the committed JSON is checked against: hedging must be
  // exactly billed (issued == won + wasted everywhere, none without
  // arming), engage on the skewed config, and flatten its tail.
  for (const LatencyRow& r : rows) {
    CCPI_CHECK(r.issued == r.won + r.wasted);
  }
  CCPI_CHECK(rows[0].issued == 0 && rows[1].issued == 0);
  CCPI_CHECK(rows[2].issued > 0);
  CCPI_CHECK(rows[2].won > 0);
  CCPI_CHECK(rows[2].p99_us <= rows[1].p99_us);
  std::printf("\n");
}

void BM_UpdateSingleSite(benchmark::State& state) {
  auto mgr = MakeManager(1, ResilienceConfig{});
  Seed(mgr.get());
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(0, 300);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_UpdateSingleSite);

void BM_UpdateFourSitesBatched(benchmark::State& state) {
  auto mgr = MakeManager(4, ResilienceConfig{}, /*threads=*/4);
  Seed(mgr.get());
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(0, 300);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_UpdateFourSitesBatched);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("topology");
  ccpi::PrintBatchTable(&harness);
  ccpi::PrintOutageTable(&harness);
  ccpi::PrintLatencyTable(&harness);
  return harness.RunAndWrite(argc, argv);
}
