// Experiment RA-KERNELS: the columnar read path against the row store it
// shadows. Frozen relations carry an immutable columnar segment (typed
// per-column arrays, dictionary-coded symbols) and the RA evaluator's
// select/join hot paths dispatch to vectorized kernels over it; this
// binary measures each kernel against a faithful row-at-a-time oracle on
// identical data, and the end-to-end evaluator with the segment present
// and absent. The sweep table (speedup_vs_row per kernel) is the artifact
// tools/check_bench_json.py gates on.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "ra/ra_eval.h"
#include "ra/ra_expr.h"
#include "relational/columnar.h"
#include "relational/database.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

/// Scoped flip of the process-wide columnar switch (benchmarks for the two
/// paths interleave in one process).
class ColumnarToggle {
 public:
  explicit ColumnarToggle(bool enabled)
      : saved_(Relation::ColumnarEnabled()) {
    Relation::SetColumnarEnabled(enabled);
  }
  ~ColumnarToggle() { Relation::SetColumnarEnabled(saved_); }

 private:
  bool saved_;
};

/// n rows of (int key 0..1M, symbol from a 64-name pool, int 0..255):
/// one raw-int64 column, one dictionary column, one narrow join column.
std::vector<Tuple> KernelRows(size_t n) {
  Rng rng(17);
  std::vector<Tuple> rows;
  rows.reserve(n);
  char name[16];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(name, sizeof(name), "s%02zu", static_cast<size_t>(rng.Below(64)));
    rows.push_back({V(static_cast<int64_t>(rng.Below(1u << 20))), V(name),
                    V(static_cast<int64_t>(rng.Below(256)))});
  }
  return rows;
}

/// Median-of-reps wall time of one call to `f`, in nanoseconds.
template <typename F>
double MeasureNs(F&& f, int reps) {
  f();  // warm caches and any lazy state outside the timed reps
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    f();
    auto stop = std::chrono::steady_clock::now();
    times.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count()));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// ---- Row-at-a-time oracles ------------------------------------------------
// Deliberately idiomatic row-path code — the loops the kernels replaced —
// not strawmen: they short-circuit per row and touch only the tested
// column.

bool RowCmp(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
  }
  return false;
}

size_t RowScan(const std::vector<Tuple>& rows, size_t col, CmpOp op,
               const Value& v, PositionList* out) {
  out->clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (RowCmp(rows[i][col], op, v)) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size();
}

/// Row-path hash equi-join: build a postings map over the right column,
/// probe with every left row, count match pairs (the kernel cost; neither
/// side materializes output tuples).
size_t RowJoin(const std::vector<Tuple>& left, size_t lcol,
               const std::vector<Tuple>& right, size_t rcol) {
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> table;
  for (size_t i = 0; i < right.size(); ++i) {
    table[right[i][rcol]].push_back(static_cast<uint32_t>(i));
  }
  size_t matches = 0;
  for (const Tuple& row : left) {
    auto it = table.find(row[lcol]);
    if (it != table.end()) matches += it->second.size();
  }
  return matches;
}

/// Columnar counterpart of RowJoin: dictionary/int-keyed build, probe-side
/// code translation, posting walks.
size_t ColumnarJoin(const ColumnarSegment& left, size_t lcol,
                    const ColumnarSegment& right, size_t rcol) {
  ColumnarJoinTable table(right, rcol);
  std::vector<int32_t> ids;
  table.TranslateProbeColumn(left, lcol, &ids);
  size_t matches = 0;
  for (int32_t id : ids) {
    if (id >= 0) matches += table.Posting(id).size();
  }
  return matches;
}

// ---- Sweep table: kernel vs row oracle, identical data --------------------

void RecordKernelSweeps(ccpi::bench::Harness* harness, bool quick) {
  size_t n = quick ? (1u << 14) : (1u << 17);
  int reps = quick ? 5 : 25;
  std::vector<Tuple> rows = KernelRows(n);
  std::shared_ptr<const ColumnarSegment> seg =
      ColumnarSegment::Build(rows, 3);
  CCPI_CHECK(seg != nullptr);

  std::printf("=== RA kernels: columnar vs row path (n=%zu) ===\n", n);
  std::printf("%-24s %12s %12s %10s\n", "kernel", "row ns", "columnar ns",
              "speedup");
  auto record = [&](const char* kernel, double row_ns, double col_ns,
                    double checksum) {
    double speedup = col_ns > 0 ? row_ns / col_ns : 0.0;
    std::printf("%-24s %12.0f %12.0f %9.1fx\n", kernel, row_ns, col_ns,
                speedup);
    harness->Sweep(kernel, {{"rows", static_cast<double>(n)},
                            {"row_ns", row_ns},
                            {"columnar_ns", col_ns},
                            {"speedup_vs_row", speedup},
                            {"checksum", checksum}});
  };

  PositionList out;
  out.reserve(n);
  size_t hits = 0;

  // Equality on the dictionary column: string-equality per row vs one
  // dictionary lookup plus a uint32 sweep.
  Value sym = V("s07");
  double row_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(hits = RowScan(rows, 1, CmpOp::kEq, sym, &out)); },
      reps);
  double col_ns = MeasureNs(
      [&] {
        out.clear();
        seg->ScanEq(1, sym, &out);
        benchmark::DoNotOptimize(out.size());
      },
      reps);
  CCPI_CHECK(out.size() == hits);
  record("kernel_scan_eq_dict", row_ns, col_ns,
         static_cast<double>(hits));

  // Range predicate on the raw int column (low selectivity, the shape of
  // the paper's interval tests): Value comparisons vs an int64 sweep.
  Value bound = V(static_cast<int64_t>(1u << 16));
  row_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(hits = RowScan(rows, 0, CmpOp::kLt, bound, &out)); },
      reps);
  col_ns = MeasureNs(
      [&] {
        out.clear();
        seg->ScanCmp(0, ScanOp::kLt, bound, &out);
        benchmark::DoNotOptimize(out.size());
      },
      reps);
  CCPI_CHECK(out.size() == hits);
  record("kernel_scan_cmp_int", row_ns, col_ns, static_cast<double>(hits));

  // Ordering on the dictionary column: the sorted dictionary turns a
  // per-row string comparison into a code-bound compare.
  Value mid = V("s32");
  row_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(hits = RowScan(rows, 1, CmpOp::kGe, mid, &out)); },
      reps);
  col_ns = MeasureNs(
      [&] {
        out.clear();
        seg->ScanCmp(1, ScanOp::kGe, mid, &out);
        benchmark::DoNotOptimize(out.size());
      },
      reps);
  CCPI_CHECK(out.size() == hits);
  record("kernel_scan_cmp_dict", row_ns, col_ns, static_cast<double>(hits));

  // Hash equi-join build + probe on the dictionary column — the workloads'
  // join keys are symbols ("widget"), so this is the representative shape.
  // Row path: a Value-keyed hash table, one string hash per build row and
  // one per probe row. Columnar path: the dictionary code IS the key id
  // (postings fill with zero hashing) and probe translation is per
  // *distinct* value, after which the probe loop is pure array indexing.
  size_t row_matches = 0;
  size_t col_matches = 0;
  row_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(row_matches = RowJoin(rows, 1, rows, 1)); },
      reps);
  col_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(col_matches = ColumnarJoin(*seg, 1, *seg, 1)); },
      reps);
  CCPI_CHECK(row_matches == col_matches);
  record("kernel_join_build_probe", row_ns, col_ns,
         static_cast<double>(row_matches));

  // The same join keyed on the narrow int column: translation still pays a
  // hash lookup per probe row (int64-keyed instead of Value-keyed), so the
  // win is the cheaper hash and compare, not a different asymptotic.
  row_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(row_matches = RowJoin(rows, 2, rows, 2)); },
      reps);
  col_ns = MeasureNs(
      [&] { benchmark::DoNotOptimize(col_matches = ColumnarJoin(*seg, 2, *seg, 2)); },
      reps);
  CCPI_CHECK(row_matches == col_matches);
  record("kernel_join_int_key", row_ns, col_ns,
         static_cast<double>(row_matches));
  std::printf("\n");
}

// ---- Sweep table: end-to-end evaluator, segment present vs absent ---------

Database EvalDb(size_t n) {
  Database db;
  Rng rng(23);
  for (size_t i = 0; i < n; ++i) {
    CCPI_CHECK(db.Insert("jl", {V(static_cast<int64_t>(rng.Below(1u << 20))),
                                V(static_cast<int64_t>(rng.Below(256)))})
                   .ok());
    CCPI_CHECK(db.Insert("jr", {V(static_cast<int64_t>(rng.Below(256))),
                                V(static_cast<int64_t>(rng.Below(1000)))})
                   .ok());
  }
  return db;
}

void RecordEvalSweeps(ccpi::bench::Harness* harness, bool quick) {
  size_t n = quick ? 1024 : 8192;
  int reps = quick ? 5 : 15;

  RaExprPtr select = RaExpr::Select(
      RaExpr::Scan("jl", 2),
      {RaCondition{RaOperand::Col(0), CmpOp::kLt,
                   RaOperand::Const(V(static_cast<int64_t>(1u << 16)))}});
  RaExprPtr join = RaExpr::Select(
      RaExpr::Product(RaExpr::Scan("jl", 2), RaExpr::Scan("jr", 2)),
      {RaCondition{RaOperand::Col(1), CmpOp::kEq, RaOperand::Col(2)}});

  std::printf("=== EvalRa end to end: frozen columnar vs row (n=%zu) ===\n",
              n);
  std::printf("%-24s %12s %12s %10s\n", "expression", "row ns",
              "columnar ns", "speedup");
  auto run = [&](const char* point, const RaExprPtr& expr) {
    size_t row_size = 0;
    size_t col_size = 0;
    double row_ns;
    double col_ns;
    {
      ColumnarToggle toggle(false);
      Database db = EvalDb(n);
      db.FreezeIndexes();  // hash indexes only: the pre-segment read path
      row_ns = MeasureNs(
          [&] {
            auto out = EvalRa(*expr, db);
            CCPI_CHECK(out.ok());
            benchmark::DoNotOptimize(row_size = out->size());
          },
          reps);
    }
    {
      ColumnarToggle toggle(true);
      Database db = EvalDb(n);
      db.FreezeIndexes();
      col_ns = MeasureNs(
          [&] {
            auto out = EvalRa(*expr, db);
            CCPI_CHECK(out.ok());
            benchmark::DoNotOptimize(col_size = out->size());
          },
          reps);
    }
    CCPI_CHECK(row_size == col_size);
    double speedup = col_ns > 0 ? row_ns / col_ns : 0.0;
    std::printf("%-24s %12.0f %12.0f %9.1fx\n", point, row_ns, col_ns,
                speedup);
    harness->Sweep(point, {{"rows", static_cast<double>(n)},
                           {"row_ns", row_ns},
                           {"columnar_ns", col_ns},
                           {"speedup_vs_row", speedup},
                           {"checksum", static_cast<double>(row_size)}});
  };
  run("eval_select", select);
  run("eval_equi_join", join);
  std::printf("\n");
}

// ---- Timed benchmarks (console + artifact, the usual sweep axes) ----------

void BM_SelectScan(benchmark::State& state) {
  bool columnar = state.range(1) != 0;
  ColumnarToggle toggle(columnar);
  size_t n = static_cast<size_t>(state.range(0));
  Database db = EvalDb(n);
  db.FreezeIndexes();
  RaExprPtr expr = RaExpr::Select(
      RaExpr::Scan("jl", 2),
      {RaCondition{RaOperand::Col(0), CmpOp::kLt,
                   RaOperand::Const(V(static_cast<int64_t>(1u << 16)))}});
  for (auto _ : state) {
    auto out = EvalRa(*expr, db);
    CCPI_CHECK(out.ok());
    benchmark::DoNotOptimize(out->size());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["columnar"] = columnar ? 1 : 0;
}
BENCHMARK(BM_SelectScan)
    ->ArgsProduct({{1024, 8192, 65536}, {0, 1}});

void BM_EquiJoin(benchmark::State& state) {
  bool columnar = state.range(1) != 0;
  ColumnarToggle toggle(columnar);
  size_t n = static_cast<size_t>(state.range(0));
  Database db = EvalDb(n);
  db.FreezeIndexes();
  RaExprPtr expr = RaExpr::Select(
      RaExpr::Product(RaExpr::Scan("jl", 2), RaExpr::Scan("jr", 2)),
      {RaCondition{RaOperand::Col(1), CmpOp::kEq, RaOperand::Col(2)}});
  for (auto _ : state) {
    auto out = EvalRa(*expr, db);
    CCPI_CHECK(out.ok());
    benchmark::DoNotOptimize(out->size());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["columnar"] = columnar ? 1 : 0;
}
BENCHMARK(BM_EquiJoin)->ArgsProduct({{1024, 4096}, {0, 1}});

void BM_FreezeWithSegment(benchmark::State& state) {
  // The price of admission: segment construction happens once per freeze,
  // off the read path. Benchmarked so the build cost stays visible next
  // to the scans it amortizes into.
  bool columnar = state.range(1) != 0;
  ColumnarToggle toggle(columnar);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = KernelRows(n);
  Relation rel(3);
  for (const Tuple& t : rows) rel.Insert(t);
  for (auto _ : state) {
    state.PauseTiming();
    // A fresh copy each iteration: copies drop the segment and indexes,
    // so every FreezeIndexes below really builds.
    Relation fresh(rel);
    state.ResumeTiming();
    fresh.FreezeIndexes();
    benchmark::DoNotOptimize(fresh.columnar_segment());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["columnar"] = columnar ? 1 : 0;
}
BENCHMARK(BM_FreezeWithSegment)->ArgsProduct({{4096, 65536}, {0, 1}});

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  const char* quick_env = std::getenv("CCPI_BENCH_QUICK");
  bool quick = quick_env != nullptr && *quick_env != '\0' && *quick_env != '0';
  ccpi::bench::Harness harness("ra_kernels");
  ccpi::RecordKernelSweeps(&harness, quick);
  ccpi::RecordEvalSweeps(&harness, quick);
  return harness.RunAndWrite(argc, argv);
}
