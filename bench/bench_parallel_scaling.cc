// Experiment PAR-1: scaling of ApplyUpdate's per-constraint check fan-out
// with the ThreadPool lane count. The workload routes every constraint to
// tier 3 (inserts into a remote predicate, so no local test applies):
// each check is an independent full evaluation over the frozen database,
// which is the embarrassingly parallel case the fan-out targets. The sweep
// crosses constraint count with thread count and reports throughput,
// speedup over the sequential configuration, and tail latency. Speedup is
// bounded by the machine's core count — on a single-core runner every
// configuration degenerates to ~1x.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

/// A manager with `constraints` tier-3-bound constraints: each joins the
/// remote stream predicate `hub` against its own remote table t<k>, with a
/// comparison no seeded row satisfies (the checks always hold, so every
/// update is applied and each one costs `constraints` full evaluations).
std::unique_ptr<ConstraintManager> MakeManager(size_t constraints,
                                               size_t threads) {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"l"}, CostModel{}, ResilienceConfig{},
      ParallelConfig{threads});
  Rng rng(17);
  for (size_t k = 0; k < constraints; ++k) {
    std::string t = "t" + std::to_string(k);
    auto p = ParseProgram("panic :- hub(X,Y) & " + t + "(Y,Z) & Z < X");
    CCPI_CHECK(p.ok());
    CCPI_CHECK(mgr->AddConstraint("c" + std::to_string(k), *p).ok());
    for (size_t row = 0; row < 60; ++row) {
      // Z in [1000, 2000) can never be below an X in [0, 100).
      CCPI_CHECK(mgr->site()
                     .db()
                     .Insert(t, {V(rng.Range(0, 99)),
                                 V(rng.Range(1000, 1999))})
                     .ok());
    }
  }
  return mgr;
}

std::vector<Update> Stream(size_t n) {
  Rng rng(29);
  std::vector<Update> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        Update::Insert("hub", {V(rng.Range(0, 99)), V(rng.Range(0, 99))}));
  }
  return out;
}

struct ScalePoint {
  double total_ms = 0;
  double updates_per_s = 0;
  double p50_ns = 0;
  double p95_ns = 0;
};

ScalePoint RunScale(size_t constraints, size_t threads, size_t updates) {
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, threads);
  std::vector<double> latencies_ns;
  latencies_ns.reserve(updates);
  auto begin = std::chrono::steady_clock::now();
  for (const Update& u : Stream(updates)) {
    auto t0 = std::chrono::steady_clock::now();
    auto reports = mgr->ApplyUpdate(u);
    auto t1 = std::chrono::steady_clock::now();
    CCPI_CHECK(reports.ok());
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
  auto end = std::chrono::steady_clock::now();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  auto percentile = [&](double p) {
    size_t idx = static_cast<size_t>(p * (latencies_ns.size() - 1) + 0.5);
    return latencies_ns[idx];
  };
  ScalePoint point;
  point.total_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count() /
      1000.0;
  point.updates_per_s =
      point.total_ms > 0 ? updates / (point.total_ms / 1000.0) : 0;
  point.p50_ns = percentile(0.50);
  point.p95_ns = percentile(0.95);
  return point;
}

void RunSweep(ccpi::bench::Harness* harness, bool quick) {
  std::vector<size_t> constraint_counts = {8, 64};
  std::vector<size_t> thread_counts = quick
                                          ? std::vector<size_t>{1, 4}
                                          : std::vector<size_t>{1, 2, 4, 8};
  size_t updates = quick ? 12 : 32;

  std::printf("=== PAR-1: check fan-out scaling (%zu hardware threads) ===\n",
              static_cast<size_t>(std::thread::hardware_concurrency()));
  std::printf("%-12s %-8s %12s %12s %10s %12s\n", "constraints", "threads",
              "total_ms", "updates/s", "speedup", "p95_us");
  for (size_t c : constraint_counts) {
    double base_ms = 0;
    for (size_t t : thread_counts) {
      ScalePoint p = RunScale(c, t, updates);
      if (t == 1) base_ms = p.total_ms;
      double speedup = p.total_ms > 0 ? base_ms / p.total_ms : 0;
      std::printf("%-12zu %-8zu %12.2f %12.1f %9.2fx %12.1f\n", c, t,
                  p.total_ms, p.updates_per_s, speedup, p.p95_ns / 1000.0);
      harness->Sweep(
          "scaling/c" + std::to_string(c) + "/t" + std::to_string(t),
          {{"constraints", static_cast<double>(c)},
           {"threads", static_cast<double>(t)},
           {"updates", static_cast<double>(updates)},
           {"total_ms", p.total_ms},
           {"updates_per_s", p.updates_per_s},
           {"speedup_vs_t1", speedup},
           {"p50_latency_ns", p.p50_ns},
           {"p95_latency_ns", p.p95_ns}});
    }
  }
  std::printf("\n");
}

void BM_ApplyUpdateFanout(benchmark::State& state) {
  size_t constraints = 16;
  size_t threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, threads);
  std::vector<Update> stream = Stream(256);
  size_t next = 0;
  for (auto _ : state) {
    auto reports = mgr->ApplyUpdate(stream[next++ % stream.size()]);
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["constraints"] = static_cast<double>(constraints);
}
BENCHMARK(BM_ApplyUpdateFanout)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("parallel_scaling");
  const char* quick_env = std::getenv("CCPI_BENCH_QUICK");
  bool quick = quick_env != nullptr && *quick_env != '\0' && *quick_env != '0';
  ccpi::RunSweep(&harness, quick);
  return harness.RunAndWrite(argc, argv);
}
