// Experiment OVERLOAD: execution budgets keep check latency bounded under
// offered load. A recursive reachability constraint over a remote edge
// chain makes every tier-3 check cost O(chain^2) derived tuples; the chain
// grows with the offered load, so an unbudgeted manager's per-update
// latency degrades with load while a deadlined manager sheds the checks it
// cannot afford and its p99 stays near the deadline. The sweep crosses
// offered load (number of tier-3 updates, with a proportionally longer
// chain) with the per-episode deadline (0 = unbudgeted baseline),
// reporting admitted/completed/shed counts, goodput, shed rate, and
// p50/p99 per-update latency.
//
// Wall-clock latencies vary by machine, so the hard assertions below stick
// to the deterministic facts: the budget accounting balances exactly
// (admitted == completed + shed) in every row, the unbudgeted rows shed
// nothing, and the deterministic fixpoint-round-capped row sheds
// everything.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_harness.h"
#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/check.h"

namespace ccpi {
namespace {

std::unique_ptr<ConstraintManager> MakeManager(size_t chain,
                                               BudgetConfig budget,
                                               ResilienceConfig resilience = {}) {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"request"}, CostModel{}, resilience,
      ParallelConfig{}, RemoteCacheConfig{}, budget);
  CCPI_CHECK(mgr->AddConstraint(
                    "no-path-to-blocked",
                    *ParseProgram("path(X,Y) :- edge(X,Y)\n"
                                  "path(X,Y) :- edge(X,Z) & path(Z,Y)\n"
                                  "panic :- request(U,N) & path(N,M) & "
                                  "blocked(M)"))
                 .ok());
  // Remote chain 0 -> 1 -> ... -> chain; nothing blocked, so every check
  // holds — after computing the whole transitive closure.
  for (size_t i = 0; i < chain; ++i) {
    CCPI_CHECK(mgr->site()
                   .db()
                   .Insert("edge", {V(static_cast<int64_t>(i)),
                                    V(static_cast<int64_t>(i + 1))})
                   .ok());
  }
  CCPI_CHECK(mgr->site().db().Insert("blocked", {V("nowhere")}).ok());
  return mgr;
}

struct OverloadRow {
  std::string name;
  size_t load = 0;
  uint64_t deadline_ms = 0;
  size_t admitted = 0;
  size_t completed = 0;
  size_t shed = 0;
  double elapsed_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

OverloadRow RunOverload(std::string name, size_t load, BudgetConfig budget,
                        ResilienceConfig resilience = {}) {
  // Chain length scales with offered load: more load means each check is
  // also individually more expensive, the overload regime of interest.
  auto mgr = MakeManager(16 * load, budget, resilience);
  std::vector<double> latencies_ns;
  latencies_ns.reserve(load);
  auto begin = std::chrono::steady_clock::now();
  for (size_t i = 0; i < load; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto reports = mgr->ApplyUpdate(
        Update::Insert("request", {V(static_cast<int64_t>(i)), V(0)}));
    auto t1 = std::chrono::steady_clock::now();
    CCPI_CHECK(reports.ok());
    latencies_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  auto end = std::chrono::steady_clock::now();

  const ManagerStats stats = mgr->stats();
  OverloadRow row;
  row.name = std::move(name);
  row.load = load;
  row.deadline_ms = budget.per_episode.deadline_ms;
  row.admitted = stats.t3_admitted;
  auto it = stats.resolved_by.find(Tier::kFullCheck);
  row.completed = it != stats.resolved_by.end() ? it->second : 0;
  row.shed = stats.shed_checks;
  row.elapsed_sec =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  std::sort(latencies_ns.begin(), latencies_ns.end());
  row.p50_ns = latencies_ns[latencies_ns.size() / 2];
  row.p99_ns = latencies_ns[(latencies_ns.size() * 99) / 100];

  // The accounting invariant, exact in every configuration: every admitted
  // tier-3 check either completed or was shed (no injector, so there are
  // no unreachable-site deferrals here).
  CCPI_CHECK(row.admitted == row.completed + row.shed);
  CCPI_CHECK(stats.deferred == 0);
  return row;
}

void PrintOverloadTable(bench::Harness* harness) {
  std::printf(
      "=== OVERLOAD: offered load x per-episode deadline "
      "(chain = 16 x load) ===\n");
  std::printf("%-22s %5s %9s %9s %9s %6s %11s %6s %11s %11s\n", "row", "load",
              "deadline", "admitted", "completed", "shed", "goodput/s",
              "shed%", "p50_ms", "p99_ms");
  std::vector<OverloadRow> rows;
  BudgetConfig none;
  BudgetConfig tight;
  tight.per_episode.deadline_ms = 2;
  for (size_t load : {8, 32}) {
    std::string suffix = "L" + std::to_string(load);
    rows.push_back(RunOverload("overload/" + suffix + "/d0", load, none));
    rows.push_back(RunOverload("overload/" + suffix + "/d2", load, tight));
  }
  // The deterministic shedding row: four fixpoint rounds can never close a
  // 512-edge chain, so every check sheds whatever the machine's speed.
  // Auto-recheck is off here to isolate the per-check cap — a round cap
  // bounds each evaluation's work but not the drain's retry count, so the
  // re-attempt cost belongs to the deadline rows, where the episode
  // envelope bounds it.
  BudgetConfig rounds;
  rounds.per_check.max_fixpoint_rounds = 4;
  ResilienceConfig no_drain;
  no_drain.auto_recheck = false;
  rows.push_back(RunOverload("overload/L32/rounds4", 32, rounds, no_drain));

  for (const OverloadRow& r : rows) {
    double goodput =
        r.elapsed_sec > 0 ? static_cast<double>(r.completed) / r.elapsed_sec
                          : 0;
    double shed_rate =
        r.admitted > 0
            ? static_cast<double>(r.shed) / static_cast<double>(r.admitted)
            : 0;
    std::printf("%-22s %5zu %8llum %9zu %9zu %6zu %11.1f %5.0f%% "
                "%11.3f %11.3f\n",
                r.name.c_str(), r.load,
                static_cast<unsigned long long>(r.deadline_ms), r.admitted,
                r.completed, r.shed, goodput, shed_rate * 100,
                r.p50_ns / 1e6, r.p99_ns / 1e6);
    harness->Sweep(r.name,
                   {{"load", static_cast<double>(r.load)},
                    {"deadline_ms", static_cast<double>(r.deadline_ms)},
                    {"admitted", static_cast<double>(r.admitted)},
                    {"completed", static_cast<double>(r.completed)},
                    {"shed", static_cast<double>(r.shed)},
                    {"goodput_per_sec", goodput},
                    {"shed_rate", shed_rate},
                    {"p50_check_ns", r.p50_ns},
                    {"p99_check_ns", r.p99_ns}});
  }
  // Unbudgeted rows never shed; the round-capped row sheds everything.
  for (const OverloadRow& r : rows) {
    if (r.deadline_ms == 0 && r.name.find("rounds") == std::string::npos) {
      CCPI_CHECK(r.shed == 0 && r.completed == r.admitted);
    }
  }
  CCPI_CHECK(rows.back().shed == rows.back().admitted);
  std::printf("\n");
}

void BM_CheckUnbudgeted(benchmark::State& state) {
  auto mgr = MakeManager(256, BudgetConfig{});
  int64_t i = 0;
  for (auto _ : state) {
    auto reports = mgr->ApplyUpdate(Update::Insert("request", {V(i++), V(0)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
}
BENCHMARK(BM_CheckUnbudgeted);

void BM_CheckTightDeadline(benchmark::State& state) {
  BudgetConfig budget;
  budget.per_episode.deadline_ms = 1;
  auto mgr = MakeManager(256, budget);
  int64_t i = 0;
  for (auto _ : state) {
    auto reports = mgr->ApplyUpdate(Update::Insert("request", {V(i++), V(0)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["shed"] = static_cast<double>(mgr->stats().shed_checks);
}
BENCHMARK(BM_CheckTightDeadline);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("overload");
  ccpi::PrintOverloadTable(&harness);
  return harness.RunAndWrite(argc, argv);
}
