// Experiment APP-CASCADE: the end-to-end constraint manager running the
// paper's tiered discipline over a mixed update stream — subsumption at
// registration, query-independence, complete local tests, full checks.
// Prints the tier-resolution table and the remote-access savings against a
// check-everything-remotely baseline, then benchmarks per-update latency
// for streams dominated by each tier.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_harness.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/constraint_manager.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

std::unique_ptr<ConstraintManager> MakeManager() {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"reserved", "emp"}, CostModel{});
  CCPI_CHECK(mgr->AddConstraint(
                    "no-reserved-order",
                    *ParseProgram("panic :- reserved(P,Lo,Hi) & order(P,Q) & "
                                  "Lo <= Q & Q <= Hi"))
                 .ok());
  CCPI_CHECK(
      mgr->AddConstraint("cap-200",
                         *ParseProgram("panic :- emp(E,D,S) & S > 200"))
          .ok());
  CCPI_CHECK(
      mgr->AddConstraint("cap-500",  // redundant given cap-200
                         *ParseProgram("panic :- emp(E,D,S) & S > 500"))
          .ok());
  return mgr;
}

std::vector<Update> MakeStream(size_t count, Rng* rng) {
  std::vector<Update> stream;
  for (size_t i = 0; i < count; ++i) {
    switch (rng->Below(4)) {
      case 0:  // hire below the cap: independence resolves it
        stream.push_back(Update::Insert(
            "emp", {V(static_cast<int64_t>(i)), V(rng->Range(0, 5)),
                    V(rng->Range(0, 200))}));
        break;
      case 1: {  // sub-range reservation: local test resolves it
        int64_t lo = rng->Range(0, 300);
        stream.push_back(Update::Insert(
            "reserved", {V("p" + std::to_string(rng->Below(3))), V(lo),
                         V(lo + rng->Range(0, 50))}));
        break;
      }
      case 2:  // unrelated relation: prefilter resolves it
        stream.push_back(
            Update::Insert("audit_log", {V(static_cast<int64_t>(i))}));
        break;
      default: {  // risky reservation: full check
        int64_t lo = rng->Range(350, 900);
        stream.push_back(Update::Insert(
            "reserved", {V("p" + std::to_string(rng->Below(3))), V(lo),
                         V(lo + rng->Range(0, 50))}));
        break;
      }
    }
  }
  return stream;
}

void Seed(ConstraintManager* mgr) {
  // Remote orders in the high band; wide safe reservations per product.
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    CCPI_CHECK(mgr->site()
                   .db()
                   .Insert("order", {V("p" + std::to_string(rng.Below(3))),
                                     V(rng.Range(500, 1000))})
                   .ok());
  }
  for (int p = 0; p < 3; ++p) {
    CCPI_CHECK(
        mgr->ApplyUpdate(Update::Insert(
                             "reserved",
                             {V("p" + std::to_string(p)), V(0), V(400)}))
            .ok());
  }
}

void PrintCascadeTable(bench::Harness* harness) {
  auto mgr = MakeManager();
  Seed(mgr.get());
  Rng rng(99);
  std::vector<Update> stream = MakeStream(200, &rng);
  size_t rejected = 0;
  for (const Update& u : stream) {
    auto reports = mgr->ApplyUpdate(u);
    CCPI_CHECK(reports.ok());
    for (const CheckReport& r : *reports) {
      if (r.outcome == Outcome::kViolated) {
        ++rejected;
        break;
      }
    }
  }
  std::printf("=== APP-CASCADE: 200 mixed updates through the 4 tiers ===\n");
  std::printf("%-16s %s\n", "tier", "constraint-checks resolved");
  size_t total = 0;
  for (const auto& [tier, count] : mgr->stats().resolved_by) {
    std::printf("%-16s %zu\n", TierToString(tier), count);
    total += count;
    harness->Sweep(std::string("cascade/tier=") + TierToString(tier),
                   {{"checks_resolved", static_cast<double>(count)}});
  }
  const ManagerStats& stats = mgr->stats();
  const AccessStats& access = stats.access;
  std::printf("updates rejected: %zu of %zu\n", rejected, stream.size());
  std::printf("access: %zu local tuples; %zu remote tuples in %zu trips "
              "(%zu failed)\n",
              access.local_tuples, access.remote_tuples, access.remote_trips,
              access.remote_failures);
  std::printf("remote episodes: %zu attempts, %zu retries, %zu failed; "
              "deferred %zu (recovered %zu, late violations %zu)\n",
              stats.remote_attempts, stats.remote_retries,
              stats.remote_failures, stats.deferred,
              stats.deferred_recovered, stats.deferred_violations);
  std::printf("cost %.1f vs a naive baseline that pays a full remote check "
              "for all %zu constraint-checks\n\n",
              access.Cost(CostModel{}), total);
  harness->Sweep(
      "cascade/stream",
      {{"updates", static_cast<double>(stream.size())},
       {"rejected", static_cast<double>(rejected)},
       {"checks_resolved", static_cast<double>(total)},
       {"local_tuples", static_cast<double>(access.local_tuples)},
       {"remote_tuples", static_cast<double>(access.remote_tuples)},
       {"remote_trips", static_cast<double>(access.remote_trips)},
       {"cost", access.Cost(CostModel{})}});
}

void BM_IndependenceDominatedStream(benchmark::State& state) {
  auto mgr = MakeManager();
  Seed(mgr.get());
  Rng rng(3);
  int64_t i = 0;
  for (auto _ : state) {
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "emp", {V(i++), V(rng.Range(0, 5)), V(rng.Range(0, 200))}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_IndependenceDominatedStream);

void BM_LocalTestDominatedStream(benchmark::State& state) {
  auto mgr = MakeManager();
  Seed(mgr.get());
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(0, 300);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_LocalTestDominatedStream);

void BM_FullCheckDominatedStream(benchmark::State& state) {
  auto mgr = MakeManager();
  Seed(mgr.get());
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(350, 900);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_FullCheckDominatedStream);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("manager_cascade");
  ccpi::PrintCascadeTable(&harness);
  return harness.RunAndWrite(argc, argv);
}
