// The exact small-model containment oracle (docs/semantics.md §3): the
// ground-truth decider behind the property sweeps. Doubly exponential by
// design — these benchmarks chart where it stays usable (which is what
// makes it a practical oracle for testing the fast deciders).

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>
#include <string>

#include "containment/exact.h"
#include "datalog/parser.h"
#include "util/check.h"

namespace ccpi {
namespace {

CQ MustCQ(const std::string& text) {
  auto rule = ParseRule(text);
  CCPI_CHECK(rule.ok());
  return RuleToCQ(*rule);
}

/// q1 with n unary atoms over distinct variables (universe grows with n).
CQ WideCq(int n) {
  std::string body;
  for (int i = 0; i < n; ++i) {
    if (i > 0) body += " & ";
    body += "p(X" + std::to_string(i) + ")";
  }
  return MustCQ("panic :- " + body);
}

void BM_Exact_UniverseSweep(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CQ q1 = WideCq(n);
  CQ q2 = MustCQ("panic :- p(X) & not q(X)");
  for (auto _ : state) {
    auto r = ExactCqContained(q1, q2);
    CCPI_CHECK(r.ok());
    benchmark::DoNotOptimize(*r);
  }
  state.counters["universe"] = n;
}
BENCHMARK(BM_Exact_UniverseSweep)->DenseRange(1, 5);

void BM_Exact_NegationUnion(benchmark::State& state) {
  // The case-split instance: p contained in (p & q) U (p & not q).
  CQ p = MustCQ("panic :- p(X)");
  UCQ u2 = {MustCQ("panic :- p(X) & q(X)"),
            MustCQ("panic :- p(X) & not q(X)")};
  for (auto _ : state) {
    auto r = ExactUcqContained({p}, u2);
    CCPI_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_Exact_NegationUnion);

void BM_Exact_ArithmeticLinearizations(benchmark::State& state) {
  // Arithmetic multiplies the check by the number of consistent orders.
  int n = static_cast<int>(state.range(0));
  std::string body = "panic :- ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) body += " & ";
    body += "r(X" + std::to_string(i) + ",Y" + std::to_string(i) + ")";
  }
  for (int i = 0; i < n; ++i) {
    body += " & X" + std::to_string(i) + " <= Y" + std::to_string(i);
  }
  CQ q1 = MustCQ(body);
  CQ q2 = MustCQ("panic :- r(U,V) & U <= V");
  for (auto _ : state) {
    auto r = ExactCqContained(q1, q2);
    CCPI_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(*r);
  }
  state.counters["atoms"] = n;
}
BENCHMARK(BM_Exact_ArithmeticLinearizations)->DenseRange(1, 3);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  std::printf(
      "=== exact small-model oracle: cost envelope ===\n"
      "(the ground truth the fast deciders are property-tested against;\n"
      "see docs/semantics.md section 3 for the algorithm)\n\n");
  ccpi::bench::Harness harness("exact_oracle");
  return harness.RunAndWrite(argc, argv);
}
