// Experiment PLAN-1: episode cost of the compiled local-test plan cache
// under repeated update patterns. The workload has K join constraints
// `panic :- l(X,Y,Z) & r<k>(Y,A,B)` — two remote-only variables defeat the
// ICQ interval analysis, so every episode runs the tier-1 independence
// analysis (K checks, each copying the K-1 other programs into the assumed
// set) and, for inserts, the tier-2 RA local test. With the cache on, the
// first episode of a tuple shape compiles those decisions once; every
// later episode with the same shape replays them from the pattern memo.
//
// Two sweeps:
//   recheck/K<k>   a uniform delete stream (one shape); reports the cold
//                  compile episode vs. the mean cached re-check episode
//                  inside the same run — the ratio is the headline
//                  speedup — plus whole-run ns/update for cache off vs on.
//   locality/f<f>/K<k>
//                  an insert stream where a fraction f of updates carry
//                  the dominant tuple shape and the rest are spread over
//                  three minority shapes; shows hit rate and per-update
//                  cost tracking pattern locality.
//
// Both sweeps re-run every stream with the cache off and assert the tier
// resolution counts, violations, and applied-update counts are identical —
// the cache is semantically invisible, only the time changes.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A manager with K ICQ-defeating join constraints over K remote tables.
/// The seeded r<k> rows never match a generated l tuple's join column, so
/// every streamed update is applied and the run stays in the steady-state
/// re-check regime the cache targets.
std::unique_ptr<ConstraintManager> MakeManager(size_t constraints,
                                               bool plan) {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"l"}, CostModel{}, ResilienceConfig{},
      ParallelConfig{}, RemoteCacheConfig{}, BudgetConfig{}, TopologyConfig{},
      PlanCacheConfig{plan});
  for (size_t k = 0; k < constraints; ++k) {
    std::string rel = "r" + std::to_string(k);
    auto p = ParseProgram("panic :- l(X,Y,Z) & " + rel + "(Y,A,B)");
    CCPI_CHECK(p.ok());
    CCPI_CHECK(mgr->AddConstraint("join" + std::to_string(k), *p).ok());
    for (int d = 0; d < 10; ++d) {
      CCPI_CHECK(mgr->site()
                     .db()
                     .Insert(rel, {V("m" + std::to_string(d)), V(d), V(d)})
                     .ok());
    }
  }
  return mgr;
}

/// Distinct-constant rows, all sharing the shape class N0.N1.N2.
std::vector<Update> DominantShapeRows(size_t n, const char* tag) {
  std::vector<Update> out;
  for (size_t i = 0; i < n; ++i) {
    std::string s = tag + std::to_string(i);
    out.push_back(
        Update::Insert("l", {V("a" + s), V("b" + s), V("c" + s)}));
  }
  return out;
}

void CheckSameResolution(const ManagerStats& off, const ManagerStats& on) {
  CCPI_CHECK(off.resolved_by == on.resolved_by);
  CCPI_CHECK(off.violations == on.violations);
  CCPI_CHECK(off.t3_admitted == on.t3_admitted);
}

struct RecheckPoint {
  double ns_total = 0;         // whole stream
  double ns_first = 0;         // episode 0 (the compile episode when on)
  double ns_rest = 0;          // mean of episodes 1..n-1
  double plan_hits = 0;
  double plan_compiles = 0;
  ManagerStats stats;
};

/// Seeds `episodes` same-shape rows and times the episode that deletes
/// each one. Tier 1 proves every delete safe; with the cache on, that
/// proof is compiled once and replayed from the pattern memo after.
RecheckPoint RunRecheck(size_t constraints, size_t episodes, bool plan) {
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, plan);
  std::vector<Update> rows = DominantShapeRows(episodes, "x");
  for (const Update& u : rows) {
    CCPI_CHECK(mgr->site().db().Insert(u.pred, u.tuple).ok());
  }
  RecheckPoint point;
  double rest_total = 0;
  for (size_t i = 0; i < episodes; ++i) {
    double t0 = NowNs();
    auto reports =
        mgr->ApplyUpdate(Update::Delete("l", rows[i].tuple));
    double dt = NowNs() - t0;
    CCPI_CHECK(reports.ok());
    point.ns_total += dt;
    if (i == 0) {
      point.ns_first = dt;
    } else {
      rest_total += dt;
    }
  }
  if (episodes > 1) {
    point.ns_rest = rest_total / static_cast<double>(episodes - 1);
  }
  point.plan_hits =
      static_cast<double>(mgr->metrics().GetCounter("plan.hits")->value());
  point.plan_compiles = static_cast<double>(
      mgr->metrics().GetCounter("plan.compiles")->value());
  point.stats = mgr->stats();
  return point;
}

struct LocalityPoint {
  double ns_per_update = 0;
  double plan_hits = 0;
  double plan_compiles = 0;
  ManagerStats stats;
};

/// An insert stream with the dominant N0.N1.N2 shape at fraction f and
/// the remainder spread across three minority shapes (repeated columns).
/// Every row is fresh, so no update is a no-op and none violates.
std::vector<Update> LocalityStream(size_t n, double f, uint64_t seed) {
  Rng rng(seed);
  std::vector<Update> out;
  for (size_t i = 0; i < n; ++i) {
    std::string s = std::to_string(i);
    bool dominant = rng.Below(1000) < static_cast<uint64_t>(f * 1000);
    if (dominant) {
      out.push_back(
          Update::Insert("l", {V("a" + s), V("b" + s), V("c" + s)}));
    } else {
      switch (rng.Below(3)) {
        case 0:
          out.push_back(
              Update::Insert("l", {V("p" + s), V("p" + s), V("q" + s)}));
          break;
        case 1:
          out.push_back(
              Update::Insert("l", {V("p" + s), V("q" + s), V("p" + s)}));
          break;
        default:
          out.push_back(
              Update::Insert("l", {V("p" + s), V("p" + s), V("p" + s)}));
          break;
      }
    }
  }
  return out;
}

LocalityPoint RunLocality(size_t constraints, double f, size_t updates,
                          bool plan) {
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, plan);
  std::vector<Update> stream = LocalityStream(updates, f, 97);
  double t0 = NowNs();
  for (const Update& u : stream) {
    auto reports = mgr->ApplyUpdate(u);
    CCPI_CHECK(reports.ok());
  }
  LocalityPoint point;
  point.ns_per_update = (NowNs() - t0) / static_cast<double>(updates);
  point.plan_hits =
      static_cast<double>(mgr->metrics().GetCounter("plan.hits")->value());
  point.plan_compiles = static_cast<double>(
      mgr->metrics().GetCounter("plan.compiles")->value());
  point.stats = mgr->stats();
  return point;
}

void RunSweep(ccpi::bench::Harness* harness, bool quick) {
  std::vector<size_t> constraint_counts =
      quick ? std::vector<size_t>{4} : std::vector<size_t>{4, 16};
  size_t episodes = quick ? 40 : 120;

  std::printf("=== PLAN-1: compiled-plan cache vs. repeated patterns ===\n");
  std::printf("%-14s %12s %12s %10s %12s %10s\n", "recheck", "ns_off",
              "ns_on", "speedup", "first_ns", "episode_x");
  for (size_t k : constraint_counts) {
    RecheckPoint off = RunRecheck(k, episodes, false);
    RecheckPoint on = RunRecheck(k, episodes, true);
    CheckSameResolution(off.stats, on.stats);
    double ns_off = off.ns_total / static_cast<double>(episodes);
    double ns_on = on.ns_total / static_cast<double>(episodes);
    double speedup = ns_on > 0 ? ns_off / ns_on : 0;
    // The headline number: the compile episode vs. the mean cached
    // re-check episode of the same warm run (noise-tolerant — one
    // process, one manager, adjacent measurements).
    double episode_speedup =
        on.ns_rest > 0 ? on.ns_first / on.ns_rest : 0;
    std::printf("K=%-12zu %12.0f %12.0f %9.1fx %12.0f %9.1fx\n", k, ns_off,
                ns_on, speedup, on.ns_first, episode_speedup);

    char point_name[64];
    std::snprintf(point_name, sizeof(point_name), "recheck/K%zu", k);
    harness->Sweep(
        point_name,
        {{"constraints", static_cast<double>(k)},
         {"episodes", static_cast<double>(episodes)},
         {"ns_per_update_off", ns_off},
         {"ns_per_update_on", ns_on},
         {"run_speedup", speedup},
         {"ns_first_episode_on", on.ns_first},
         {"ns_recheck_episode_on", on.ns_rest},
         {"episode_speedup", episode_speedup},
         {"plan_hits", on.plan_hits},
         {"plan_compiles", on.plan_compiles}});
  }

  std::vector<double> fractions = {0.0, 0.5, 0.9, 1.0};
  size_t updates = quick ? 40 : 120;
  std::printf("\n%-16s %-6s %14s %14s %10s %10s\n", "locality", "K",
              "ns_off", "ns_on", "hits", "compiles");
  for (size_t k : constraint_counts) {
    for (double f : fractions) {
      LocalityPoint off = RunLocality(k, f, updates, false);
      LocalityPoint on = RunLocality(k, f, updates, true);
      CheckSameResolution(off.stats, on.stats);
      double denom = on.plan_hits + on.plan_compiles;
      double hit_rate = denom > 0 ? on.plan_hits / denom : 0;
      std::printf("f=%-14.2f %-6zu %14.0f %14.0f %10.0f %10.0f\n", f, k,
                  off.ns_per_update, on.ns_per_update, on.plan_hits,
                  on.plan_compiles);

      char point_name[64];
      std::snprintf(point_name, sizeof(point_name), "locality/f%.2f/K%zu",
                    f, k);
      harness->Sweep(
          point_name,
          {{"locality", f},
           {"constraints", static_cast<double>(k)},
           {"updates", static_cast<double>(updates)},
           {"ns_per_update_off", off.ns_per_update},
           {"ns_per_update_on", on.ns_per_update},
           {"plan_hits", on.plan_hits},
           {"plan_compiles", on.plan_compiles},
           {"hit_rate", hit_rate}});
    }
  }
  std::printf("\n");
}

void BM_ApplyUpdatePlanCache(benchmark::State& state) {
  size_t constraints = 8;
  bool plan = state.range(0) != 0;
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, plan);
  // Insert/delete the same fresh row in alternation: both directions are
  // real episodes (never no-ops) and the database stays bounded.
  size_t i = 0;
  for (auto _ : state) {
    std::string s = std::to_string(i / 2 % 64);
    std::vector<Value> row = {V("a" + s), V("b" + s), V("c" + s)};
    auto reports = mgr->ApplyUpdate(i % 2 == 0
                                        ? Update::Insert("l", row)
                                        : Update::Delete("l", row));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
    ++i;
  }
  state.counters["plan"] = plan ? 1 : 0;
  state.counters["plan_hits"] = static_cast<double>(
      mgr->metrics().GetCounter("plan.hits")->value());
  state.counters["plan_compiles"] = static_cast<double>(
      mgr->metrics().GetCounter("plan.compiles")->value());
}
BENCHMARK(BM_ApplyUpdatePlanCache)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("plan_cache");
  const char* quick_env = std::getenv("CCPI_BENCH_QUICK");
  bool quick = quick_env != nullptr && *quick_env != '\0' && *quick_env != '0';
  ccpi::RunSweep(&harness, quick);
  return harness.RunAndWrite(argc, argv);
}
