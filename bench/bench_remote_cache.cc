// Experiment CACHE-1: remote-trip savings of the remote-read snapshot
// cache under varying update locality. The workload has K referential
// constraints `panic :- emp(E,D,S) & not dept<k>(D)` — negation over a
// remote table defeats every local test, so each emp insert costs K full
// tier-3 checks, each reading one remote relation. The sweep crosses the
// fraction f of updates that mutate a remote-referenced relation (and so
// genuinely invalidate its cached snapshot) with K: at f=0 the cache
// converges to zero trips per update; at f=1 every episode refetches and
// the cache can only break even. The paper's target regime is the low-f
// row — most updates touch local data only, so almost every remote
// snapshot is still current and the trips collapse.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

constexpr size_t kDeptDomain = 10;   // d0..d9 seeded into every dept<k>
constexpr size_t kDeptRows = 40;     // extra rows: remote relations have bulk

/// A manager with K tier-3-bound referential constraints over K remote
/// tables. Every seeded emp row and every generated emp insert references
/// a seeded department, so the constraints always hold and each update is
/// applied (the steady-state regime the cache targets).
std::unique_ptr<ConstraintManager> MakeManager(size_t constraints,
                                               bool cache) {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"emp"}, CostModel{}, ResilienceConfig{},
      ParallelConfig{}, RemoteCacheConfig{cache});
  for (size_t k = 0; k < constraints; ++k) {
    std::string dept = "dept" + std::to_string(k);
    auto p = ParseProgram("panic :- emp(E,D,S) & not " + dept + "(D)");
    CCPI_CHECK(p.ok());
    CCPI_CHECK(mgr->AddConstraint("ref" + std::to_string(k), *p).ok());
    for (size_t d = 0; d < kDeptDomain + kDeptRows; ++d) {
      CCPI_CHECK(
          mgr->site().db().Insert(dept, {V("d" + std::to_string(d))}).ok());
    }
  }
  for (int i = 0; i < 20; ++i) {
    CCPI_CHECK(mgr->site()
                   .db()
                   .Insert("emp", {V("seed" + std::to_string(i)),
                                   V("d" + std::to_string(i % kDeptDomain)),
                                   V(i)})
                   .ok());
  }
  return mgr;
}

/// `n` updates, a fraction `locality` of which insert a fresh row into a
/// random remote dept<k> — the only mutations that invalidate a cached
/// remote snapshot. The rest are local emp inserts, each costing K full
/// checks. Deterministic in the seed, identical across cache modes.
std::vector<Update> Stream(size_t n, double locality, size_t constraints,
                           uint64_t seed) {
  Rng rng(seed);
  std::vector<Update> out;
  for (size_t i = 0; i < n; ++i) {
    bool remote = rng.Below(1000) < static_cast<uint64_t>(locality * 1000);
    if (remote) {
      std::string dept = "dept" + std::to_string(rng.Below(constraints));
      out.push_back(
          Update::Insert(dept, {V("new" + std::to_string(i))}));
    } else {
      out.push_back(Update::Insert(
          "emp", {V("e" + std::to_string(i)),
                  V("d" + std::to_string(rng.Below(kDeptDomain))),
                  V(static_cast<int64_t>(rng.Below(100)))}));
    }
  }
  return out;
}

struct CachePoint {
  AccessStats access;
  double sim_cost = 0;
  double ns_per_update = 0;
};

CachePoint RunOne(size_t constraints, double locality, size_t updates,
                  bool cache) {
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, cache);
  std::vector<Update> stream = Stream(updates, locality, constraints, 97);
  auto t0 = std::chrono::steady_clock::now();
  for (const Update& u : stream) {
    auto reports = mgr->ApplyUpdate(u);
    CCPI_CHECK(reports.ok());
  }
  auto t1 = std::chrono::steady_clock::now();
  CachePoint point;
  point.access = mgr->stats().access;
  point.sim_cost = point.access.Cost(CostModel{});
  point.ns_per_update =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      static_cast<double>(updates);
  return point;
}

void RunSweep(ccpi::bench::Harness* harness, bool quick) {
  std::vector<double> localities = {0.0, 0.1, 0.5, 1.0};
  std::vector<size_t> constraint_counts =
      quick ? std::vector<size_t>{4} : std::vector<size_t>{4, 16};
  size_t updates = quick ? 60 : 200;

  std::printf("=== CACHE-1: remote-read cache vs. update locality ===\n");
  std::printf("%-10s %-6s %12s %12s %10s %12s %14s\n", "locality", "K",
              "trips_off", "trips_on", "reduction", "cache_hits",
              "cost_ratio");
  for (size_t k : constraint_counts) {
    for (double f : localities) {
      CachePoint off = RunOne(k, f, updates, false);
      CachePoint on = RunOne(k, f, updates, true);
      double reduction =
          on.access.remote_trips > 0
              ? static_cast<double>(off.access.remote_trips) /
                    static_cast<double>(on.access.remote_trips)
              : 0;
      double cost_ratio = off.sim_cost > 0 ? on.sim_cost / off.sim_cost : 0;
      std::printf("%-10.2f %-6zu %12zu %12zu %9.1fx %12zu %14.3f\n", f, k,
                  off.access.remote_trips, on.access.remote_trips, reduction,
                  on.access.cache_hits, cost_ratio);

      char point_name[64];
      std::snprintf(point_name, sizeof(point_name),
                    "locality/f%.2f/K%zu", f, k);
      harness->Sweep(
          point_name,
          {{"locality", f},
           {"constraints", static_cast<double>(k)},
           {"updates", static_cast<double>(updates)},
           {"remote_trips_off", static_cast<double>(off.access.remote_trips)},
           {"remote_trips_on", static_cast<double>(on.access.remote_trips)},
           {"trip_reduction", reduction},
           {"cache_hits", static_cast<double>(on.access.cache_hits)},
           {"cached_tuples", static_cast<double>(on.access.cached_tuples)},
           {"remote_tuples_off",
            static_cast<double>(off.access.remote_tuples)},
           {"sim_cost_off", off.sim_cost},
           {"sim_cost_on", on.sim_cost},
           {"ns_per_update_off", off.ns_per_update},
           {"ns_per_update_on", on.ns_per_update}});
    }
  }
  std::printf("\n");
}

void BM_ApplyUpdateRemoteCache(benchmark::State& state) {
  size_t constraints = 8;
  bool cache = state.range(0) != 0;
  std::unique_ptr<ConstraintManager> mgr = MakeManager(constraints, cache);
  std::vector<Update> stream = Stream(256, 0.1, constraints, 41);
  size_t next = 0;
  for (auto _ : state) {
    auto reports = mgr->ApplyUpdate(stream[next++ % stream.size()]);
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  AccessStats access = mgr->stats().access;
  state.counters["cache"] = cache ? 1 : 0;
  state.counters["remote_trips"] =
      static_cast<double>(access.remote_trips);
  state.counters["cache_hits"] = static_cast<double>(access.cache_hits);
}
BENCHMARK(BM_ApplyUpdateRemoteCache)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("remote_cache");
  const char* quick_env = std::getenv("CCPI_BENCH_QUICK");
  bool quick = quick_env != nullptr && *quick_env != '\0' && *quick_env != '0';
  ccpi::RunSweep(&harness, quick);
  return harness.RunAndWrite(argc, argv);
}
