// Experiment THM-5.1: the paper's "Comparison With Klug's Approach"
// (Section 5). Both algorithms decide CQC containment exactly, with dual
// exponential profiles:
//   * Theorem 5.1 is exponential in the number of containment mappings
//     (driven by duplicate predicates),
//   * Klug [1988] is exponential in the number of variable orders
//     (driven by the variable count of C1).
// The paper argues real constraints have few duplicate predicates, so the
// mapping-based test wins in practice. The printed table and the two
// benchmark sweeps reproduce exactly that shape: Theorem 5.1 stays flat on
// the variable sweep where Klug grows by orders of magnitude, and only the
// deliberately adversarial duplicate-predicate sweep makes Theorem 5.1 work
// hard.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>
#include <string>

#include "containment/cqc.h"
#include "containment/klug.h"
#include "containment/linearize.h"
#include "datalog/parser.h"
#include "util/check.h"

namespace ccpi {
namespace {

/// C1 = panic :- p1(X1,Y1) & ... & pn(Xn,Yn) with the chain
/// X1<=Y1<=X2<=...<=Yn. With `same_pred` all atoms use predicate r
/// (mappings multiply); otherwise predicates are distinct (one mapping).
CQ ChainCqc(int atoms, bool same_pred) {
  std::string body;
  for (int i = 0; i < atoms; ++i) {
    std::string pred = same_pred ? "r" : "r" + std::to_string(i);
    std::string x = "X" + std::to_string(i);
    std::string y = "Y" + std::to_string(i);
    if (i > 0) body += " & ";
    body += pred + "(" + x + "," + y + ")";
  }
  for (int i = 0; i < atoms; ++i) {
    std::string x = "X" + std::to_string(i);
    std::string y = "Y" + std::to_string(i);
    body += " & " + x + " <= " + y;
    if (i + 1 < atoms) body += " & " + y + " <= X" + std::to_string(i + 1);
  }
  auto rule = ParseRule("panic :- " + body);
  CCPI_CHECK(rule.ok());
  return RuleToCQ(*rule);
}

/// C2 = panic :- r(U,V) & U <= V (or r0 when predicates are distinct).
CQ SingleAtomCqc(bool same_pred) {
  auto rule = ParseRule(same_pred ? "panic :- r(U,V) & U <= V"
                                  : "panic :- r0(U,V) & U <= V");
  CCPI_CHECK(rule.ok());
  return RuleToCQ(*rule);
}

void PrintComparisonTable() {
  std::printf(
      "=== THM 5.1 vs Klug: work done per containment instance ===\n"
      "(distinct predicates: the practical case the paper argues for)\n"
      "%-8s %-12s %-16s %s\n", "atoms", "variables", "thm5.1 mappings",
      "klug linearizations");
  for (int n = 1; n <= 4; ++n) {
    CQ c1 = ChainCqc(n, /*same_pred=*/false);
    CQ c2 = SingleAtomCqc(false);
    auto mappings = CountMappings(c1, {c2});
    CCPI_CHECK(mappings.ok());
    KlugStats stats;
    auto klug = KlugContainedInUnion(c1, {c2}, &stats);
    CCPI_CHECK(klug.ok());
    auto t51 = CqcContainedInUnion(c1, {c2});
    CCPI_CHECK(t51.ok());
    CCPI_CHECK(*t51 == *klug);  // the algorithms agree
    std::printf("%-8d %-12d %-16zu %zu\n", n, 2 * n, *mappings,
                stats.linearizations);
  }
  std::printf(
      "\n(same predicate everywhere: the adversarial case for Thm 5.1)\n"
      "%-8s %-12s %-16s %s\n", "atoms", "variables", "thm5.1 mappings",
      "klug linearizations");
  for (int n = 1; n <= 4; ++n) {
    CQ c1 = ChainCqc(n, /*same_pred=*/true);
    CQ c2 = SingleAtomCqc(true);
    auto mappings = CountMappings(c1, {c2});
    CCPI_CHECK(mappings.ok());
    KlugStats stats;
    auto klug = KlugContainedInUnion(c1, {c2}, &stats);
    CCPI_CHECK(klug.ok());
    std::printf("%-8d %-12d %-16zu %zu\n", n, 2 * n, *mappings,
                stats.linearizations);
  }
  std::printf("\n");
}

void BM_Theorem51_VariableSweep(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  CQ c1 = ChainCqc(atoms, /*same_pred=*/false);
  CQ c2 = SingleAtomCqc(false);
  for (auto _ : state) {
    auto r = CqcContainedInUnion(c1, {c2});
    CCPI_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(*r);
  }
  state.counters["variables"] = 2.0 * atoms;
  auto mappings = CountMappings(c1, {c2});
  state.counters["mappings"] = static_cast<double>(*mappings);
}
BENCHMARK(BM_Theorem51_VariableSweep)->DenseRange(1, 6);

void BM_Klug_VariableSweep(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  CQ c1 = ChainCqc(atoms, /*same_pred=*/false);
  CQ c2 = SingleAtomCqc(false);
  size_t linearizations = 0;
  for (auto _ : state) {
    KlugStats stats;
    auto r = KlugContainedInUnion(c1, {c2}, &stats);
    CCPI_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(*r);
    linearizations = stats.linearizations;
  }
  state.counters["variables"] = 2.0 * atoms;
  state.counters["linearizations"] = static_cast<double>(linearizations);
}
BENCHMARK(BM_Klug_VariableSweep)->DenseRange(1, 6);

void BM_Theorem51_DuplicatePredicates(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  CQ c1 = ChainCqc(atoms, /*same_pred=*/true);
  // C2 with two duplicate atoms makes mappings grow as atoms^2.
  auto rule = ParseRule("panic :- r(U,V) & r(W,Q) & U <= V & W <= Q");
  CCPI_CHECK(rule.ok());
  CQ c2 = RuleToCQ(*rule);
  for (auto _ : state) {
    auto r = CqcContainedInUnion(c1, {c2});
    CCPI_CHECK(r.ok());
    benchmark::DoNotOptimize(*r);
  }
  auto mappings = CountMappings(c1, {c2});
  state.counters["mappings"] = static_cast<double>(*mappings);
}
BENCHMARK(BM_Theorem51_DuplicatePredicates)->DenseRange(1, 6);

void BM_Klug_DuplicatePredicates(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  CQ c1 = ChainCqc(atoms, /*same_pred=*/true);
  auto rule = ParseRule("panic :- r(U,V) & r(W,Q) & U <= V & W <= Q");
  CCPI_CHECK(rule.ok());
  CQ c2 = RuleToCQ(*rule);
  for (auto _ : state) {
    KlugStats stats;
    auto r = KlugContainedInUnion(c1, {c2}, &stats);
    CCPI_CHECK(r.ok());
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_Klug_DuplicatePredicates)->DenseRange(1, 5);

void RunLinearizationEnumeration(benchmark::State& state, bool prune) {
  // Ablation for Klug's inner loop: incremental pruning of the ordered-
  // partition enumeration against A(C1). Without pruning the enumerator
  // visits all Fubini(n) ordered partitions and filters at the leaves
  // (~450x slower at 8 variables); with pruning it still grows
  // exponentially in the consistent-linearization count — the algorithmic
  // barrier the paper attributes to Klug's approach.
  int atoms = static_cast<int>(state.range(0));
  CQ c1 = ChainCqc(atoms, /*same_pred=*/false);
  std::vector<std::string> vars = c1.Variables();
  LinearizeOptions options;
  options.prune = prune;
  size_t count = 0;
  for (auto _ : state) {
    count = 0;
    EnumerateLinearizations(vars, {}, c1.comparisons,
                            [&](const Linearization&) {
                              ++count;
                              return true;
                            },
                            options);
    benchmark::DoNotOptimize(count);
  }
  state.counters["consistent"] = static_cast<double>(count);
}

void BM_Linearize_Pruned(benchmark::State& state) {
  RunLinearizationEnumeration(state, true);
}
BENCHMARK(BM_Linearize_Pruned)->DenseRange(1, 5);

void BM_Linearize_Unpruned(benchmark::State& state) {
  RunLinearizationEnumeration(state, false);
}
BENCHMARK(BM_Linearize_Unpruned)->DenseRange(1, 4);

/// Example 5.1 (Ullman's Example 14.7) as a microbenchmark: the instance
/// that needs BOTH containment mappings.
void BM_Example51(benchmark::State& state) {
  auto r1 = ParseRule("panic :- r(U,V) & r(S,T) & U = T & V = S");
  auto r2 = ParseRule("panic :- r(U,V) & U <= V");
  CQ c1 = RuleToCQ(*r1);
  CQ c2 = RuleToCQ(*r2);
  for (auto _ : state) {
    auto r = CqcContained(c1, c2);
    CCPI_CHECK(r.ok() && *r);
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_Example51);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintComparisonTable();
  ccpi::bench::Harness harness("thm51_vs_klug");
  return harness.RunAndWrite(argc, argv);
}
