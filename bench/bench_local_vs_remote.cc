// Experiment THM-5.2 / APP: the headline trade-off of the paper — the
// complete local test (constraints + update + local data only) versus the
// full check that reads the remote relation. The printed table reports, per
// workload point, the simulated access cost of each strategy and the local
// test's conclusiveness; the benchmarks time both paths as the local and
// remote relations grow.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_harness.h"
#include "core/cqc_form.h"
#include "core/local_test.h"
#include "datalog/parser.h"
#include "distsim/site_db.h"
#include "eval/engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Cqc ForbiddenIntervalsCqc() {
  auto rule = ParseRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y");
  CCPI_CHECK(rule.ok());
  auto cqc = MakeCqc(*rule, "l");
  CCPI_CHECK(cqc.ok());
  return *cqc;
}

/// Local relation: n overlapping intervals tiling [0, 2n+2]; remote:
/// m readings outside the tiled region (the constraint holds).
void MakeSite(size_t n_local, size_t m_remote, SiteDatabase* site,
              Relation* local) {
  for (size_t i = 0; i < n_local; ++i) {
    Tuple t = {V(static_cast<int64_t>(2 * i)),
               V(static_cast<int64_t>(2 * i + 3))};
    local->Insert(t);
    CCPI_CHECK(site->db().Insert("l", t).ok());
  }
  Rng rng(4);
  int64_t base = static_cast<int64_t>(2 * n_local) + 10;
  for (size_t j = 0; j < m_remote; ++j) {
    CCPI_CHECK(site->db().Insert("r", {V(base + rng.Range(0, 100000))}).ok());
  }
}

void PrintCostTable(bench::Harness* harness) {
  std::printf(
      "=== THM 5.2: complete local test vs full remote check ===\n"
      "workload: insert a covered sub-interval; |R| remote readings\n"
      "%-8s %-8s %-12s %-22s %s\n", "|L|", "|R|", "local-test",
      "local cost (tuples)", "full-check cost (remote tuples, trips)");
  CostModel costs;
  Cqc cqc = ForbiddenIntervalsCqc();
  Program constraint;
  constraint.rules.push_back(cqc.ToCQ().ToRule());
  for (size_t n : {4u, 16u, 64u}) {
    for (size_t m : {100u, 10000u}) {
      SiteDatabase site({"l"});
      Relation local(2);
      MakeSite(n, m, &site, &local);
      Tuple t = {V(1), V(static_cast<int64_t>(2 * n))};

      auto verdict = CompleteLocalTestOnInsert(cqc, t, local);
      CCPI_CHECK(verdict.ok());
      // The local test reads L once.
      CCPI_CHECK(site.OnRead("l", local.size()).ok());
      AccessStats local_stats = site.stats();

      site.ResetStats();
      Database after = site.db();
      CCPI_CHECK(after.Insert("l", t).ok());
      EvalOptions options;
      options.observer = &site;
      auto full = IsViolated(constraint, after, options);
      CCPI_CHECK(full.ok() && !*full);
      AccessStats full_stats = site.stats();

      std::printf("%-8zu %-8zu %-12s %-22zu %zu tuples, %zu trips\n", n, m,
                  OutcomeToString(verdict->outcome),
                  local_stats.local_tuples, full_stats.remote_tuples,
                  full_stats.remote_trips);
      harness->Sweep(
          "local_vs_remote/L=" + std::to_string(n) +
              "/R=" + std::to_string(m),
          {{"local_tuples", static_cast<double>(n)},
           {"remote_tuples", static_cast<double>(m)},
           {"local_test_cost", local_stats.Cost(costs)},
           {"local_test_local_reads",
            static_cast<double>(local_stats.local_tuples)},
           {"local_test_remote_trips",
            static_cast<double>(local_stats.remote_trips)},
           {"full_check_cost", full_stats.Cost(costs)},
           {"full_check_remote_reads",
            static_cast<double>(full_stats.remote_tuples)},
           {"full_check_remote_trips",
            static_cast<double>(full_stats.remote_trips)}});
    }
  }
  std::printf(
      "\n(the local test's cost is independent of |R| — the paper's point:\n"
      "remote data need not be touched at all when the test concludes)\n\n");
}

void BM_CompleteLocalTest(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SiteDatabase site({"l"});
  Relation local(2);
  MakeSite(n, /*m_remote=*/10000, &site, &local);
  Cqc cqc = ForbiddenIntervalsCqc();
  Tuple t = {V(1), V(static_cast<int64_t>(2 * n))};
  for (auto _ : state) {
    auto verdict = CompleteLocalTestOnInsert(cqc, t, local);
    CCPI_CHECK(verdict.ok());
    benchmark::DoNotOptimize(verdict->outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
  state.counters["remote_reads"] = 0;
}
BENCHMARK(BM_CompleteLocalTest)->RangeMultiplier(2)->Range(2, 128);

void BM_FullRemoteCheck(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  SiteDatabase site({"l"});
  Relation local(2);
  MakeSite(/*n_local=*/16, m, &site, &local);
  Cqc cqc = ForbiddenIntervalsCqc();
  Program constraint;
  constraint.rules.push_back(cqc.ToCQ().ToRule());
  Tuple t = {V(1), V(32)};
  Database after = site.db();
  CCPI_CHECK(after.Insert("l", t).ok());
  size_t remote = 0;
  for (auto _ : state) {
    site.ResetStats();
    EvalOptions options;
    options.observer = &site;
    auto full = IsViolated(constraint, after, options);
    CCPI_CHECK(full.ok());
    benchmark::DoNotOptimize(*full);
    remote = site.stats().remote_tuples;
  }
  state.counters["|R|"] = static_cast<double>(m);
  state.counters["remote_reads"] = static_cast<double>(remote);
}
BENCHMARK(BM_FullRemoteCheck)->RangeMultiplier(4)->Range(64, 16384);

void BM_LocalTestWitnessConstruction(benchmark::State& state) {
  // The inconclusive path: refutation + canonical-database witness.
  size_t n = static_cast<size_t>(state.range(0));
  Relation local(2);
  SiteDatabase site({"l"});
  MakeSite(n, 0, &site, &local);
  Cqc cqc = ForbiddenIntervalsCqc();
  Tuple t = {V(-50), V(-10)};  // never covered
  for (auto _ : state) {
    auto verdict = CompleteLocalTestOnInsert(cqc, t, local);
    CCPI_CHECK(verdict.ok());
    CCPI_CHECK(verdict->outcome == Outcome::kUnknown);
    benchmark::DoNotOptimize(verdict->witness_remote.has_value());
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_LocalTestWitnessConstruction)->RangeMultiplier(2)->Range(2, 64);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("local_vs_remote");
  ccpi::PrintCostTable(&harness);
  return harness.RunAndWrite(argc, argv);
}
