// Experiment FAULT-DEGRADE: graceful degradation of the tiered manager
// when the remote site fails. A fixed mixed update stream is replayed
// under increasing transient-failure rates and under a full hard outage;
// the table shows that tiers 0-2 keep answering regardless of the remote
// link (their resolution counts are fault-invariant), that retries absorb
// moderate fault rates at a bounded cost in attempts, and that under a
// hard outage every tier-3 check degrades to a deferred verdict which the
// post-outage drain re-verifies — including rolling back the optimistic
// applies the late checks expose as violations.
//
// The timed benchmarks compare per-update latency on a healthy link, on a
// lossy link (retries), and during an outage with the circuit breaker
// failing fast.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_harness.h"
#include "datalog/parser.h"
#include "distsim/fault_injector.h"
#include "manager/constraint_manager.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

std::unique_ptr<ConstraintManager> MakeManager(ResilienceConfig resilience) {
  auto mgr = std::make_unique<ConstraintManager>(
      std::set<std::string>{"reserved", "emp"}, CostModel{}, resilience);
  CCPI_CHECK(mgr->AddConstraint(
                    "no-reserved-order",
                    *ParseProgram("panic :- reserved(P,Lo,Hi) & order(P,Q) & "
                                  "Lo <= Q & Q <= Hi"))
                 .ok());
  CCPI_CHECK(
      mgr->AddConstraint("cap-200",
                         *ParseProgram("panic :- emp(E,D,S) & S > 200"))
          .ok());
  return mgr;
}

void Seed(ConstraintManager* mgr) {
  // Remote orders in the high band; the initial state is installed
  // unchecked (the paper's standing assumption: constraints hold before
  // the first update), so seeding works even if the link is already down.
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    CCPI_CHECK(mgr->site()
                   .db()
                   .Insert("order", {V("p" + std::to_string(rng.Below(3))),
                                     V(rng.Range(500, 1000))})
                   .ok());
  }
  for (int p = 0; p < 3; ++p) {
    CCPI_CHECK(mgr->site()
                   .db()
                   .Insert("reserved",
                           {V("p" + std::to_string(p)), V(0), V(400)})
                   .ok());
  }
}

std::vector<Update> MakeStream(size_t count, Rng* rng) {
  std::vector<Update> stream;
  for (size_t i = 0; i < count; ++i) {
    switch (rng->Below(4)) {
      case 0:  // hire below the cap: independence resolves it
        stream.push_back(Update::Insert(
            "emp", {V(static_cast<int64_t>(i)), V(rng->Range(0, 5)),
                    V(rng->Range(0, 200))}));
        break;
      case 1: {  // sub-range reservation: local test resolves it
        int64_t lo = rng->Range(0, 300);
        stream.push_back(Update::Insert(
            "reserved", {V("p" + std::to_string(rng->Below(3))), V(lo),
                         V(lo + rng->Range(0, 50))}));
        break;
      }
      case 2:  // unrelated relation: prefilter resolves it
        stream.push_back(
            Update::Insert("audit_log", {V(static_cast<int64_t>(i))}));
        break;
      default: {  // risky reservation: needs the remote orders
        int64_t lo = rng->Range(350, 900);
        stream.push_back(Update::Insert(
            "reserved", {V("p" + std::to_string(rng->Below(3))), V(lo),
                         V(lo + rng->Range(0, 50))}));
        break;
      }
    }
  }
  return stream;
}

struct SweepRow {
  const char* label;
  size_t local_resolved = 0;  // checks settled at tiers 0-2
  size_t full_checks = 0;     // checks settled at tier 3
  size_t deferred = 0;
  size_t retries = 0;
  size_t failed_trips = 0;
  size_t recovered = 0;
  size_t late_violations = 0;
  size_t pending = 0;
  double cost = 0;
};

SweepRow RunSweep(const char* label, double transient_rate,
                  bool hard_outage) {
  ResilienceConfig resilience;
  resilience.retry.max_attempts = hard_outage ? 2 : 6;
  auto mgr = MakeManager(resilience);
  Seed(mgr.get());
  FaultConfig faults;
  faults.seed = 11;
  faults.transient_rate = transient_rate;
  FaultInjector injector(faults);
  if (hard_outage) injector.ForceOutage(true);
  mgr->site().set_fault_injector(&injector);

  Rng rng(99);
  for (const Update& u : MakeStream(120, &rng)) {
    CCPI_CHECK(mgr->ApplyUpdate(u).ok());  // never errors, whatever fails
  }

  // The link heals at shutdown (a tier-3 recheck touches every reserved
  // row, so at 50% per-trip loss the site is *effectively* unreachable
  // until it does); simulated time is free here, so wait out the breaker
  // cooldown between rounds and drain until the queue clears.
  mgr->site().set_fault_injector(nullptr);
  for (int idle = 0; !mgr->deferred_queue().empty() && idle < 4;) {
    mgr->TickBreaker(resilience.breaker.cooldown_ticks + 1);
    auto late = mgr->RecheckDeferred();
    CCPI_CHECK(late.ok());
    idle = late->empty() ? idle + 1 : 0;
  }

  const ManagerStats& stats = mgr->stats();
  SweepRow row;
  row.label = label;
  for (const auto& [tier, count] : stats.resolved_by) {
    if (tier == Tier::kFullCheck) {
      row.full_checks += count;
    } else {
      row.local_resolved += count;
    }
  }
  row.deferred = stats.deferred;
  row.retries = stats.remote_retries;
  row.failed_trips = stats.access.remote_failures;
  row.recovered = stats.deferred_recovered;
  row.late_violations = stats.deferred_violations;
  row.pending = mgr->deferred_queue().size();
  row.cost = stats.access.Cost(CostModel{});
  return row;
}

void PrintDegradationTable(bench::Harness* harness) {
  std::printf(
      "=== FAULT-DEGRADE: 120 mixed updates vs remote-site failures ===\n");
  std::printf("%-14s %6s %5s %6s %7s %6s %6s %5s %7s %9s\n", "fault level",
              "t0-2", "t3", "defer", "retries", "failed", "recov", "late",
              "pending", "cost");
  std::vector<SweepRow> rows;
  rows.push_back(RunSweep("healthy", 0.0, false));
  rows.push_back(RunSweep("lossy 10%", 0.10, false));
  rows.push_back(RunSweep("lossy 25%", 0.25, false));
  rows.push_back(RunSweep("lossy 50%", 0.50, false));
  rows.push_back(RunSweep("hard outage", 0.0, true));
  for (const SweepRow& r : rows) {
    std::printf("%-14s %6zu %5zu %6zu %7zu %6zu %6zu %5zu %7zu %9.1f\n",
                r.label, r.local_resolved, r.full_checks, r.deferred,
                r.retries, r.failed_trips, r.recovered, r.late_violations,
                r.pending, r.cost);
    harness->Sweep(
        std::string("fault_degradation/") + r.label,
        {{"local_resolved", static_cast<double>(r.local_resolved)},
         {"full_checks", static_cast<double>(r.full_checks)},
         {"deferred", static_cast<double>(r.deferred)},
         {"retries", static_cast<double>(r.retries)},
         {"failed_trips", static_cast<double>(r.failed_trips)},
         {"recovered", static_cast<double>(r.recovered)},
         {"late_violations", static_cast<double>(r.late_violations)},
         {"pending", static_cast<double>(r.pending)},
         {"cost", r.cost}});
  }
  // The availability story in two invariants: the local tiers resolve
  // exactly the same checks whatever the link does (this stream's tier-2
  // verdicts rest only on the seeded, verified coverage — never on
  // pending optimistic tuples, which tier 2 refuses to trust), and
  // nothing stays pending once the link heals.
  for (const SweepRow& r : rows) {
    CCPI_CHECK(r.local_resolved == rows[0].local_resolved);
    CCPI_CHECK(r.pending == 0);
  }
  CCPI_CHECK(rows.back().late_violations > 0);  // late rollback exercised
  std::printf("\n");
}

void BM_UpdateHealthyLink(benchmark::State& state) {
  auto mgr = MakeManager({});
  Seed(mgr.get());
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(350, 900);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_UpdateHealthyLink);

void BM_UpdateLossyLinkRetries(benchmark::State& state) {
  auto mgr = MakeManager({});
  Seed(mgr.get());
  FaultConfig faults;
  faults.seed = 5;
  faults.transient_rate = 0.3;
  FaultInjector injector(faults);
  mgr->site().set_fault_injector(&injector);
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(350, 900);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_UpdateLossyLinkRetries);

void BM_UpdateDuringOutageFastFail(benchmark::State& state) {
  // kReject keeps the deferred queue empty, isolating the steady-state
  // cost of the open-breaker fast path.
  ResilienceConfig resilience;
  resilience.retry.max_attempts = 1;
  resilience.breaker.failure_threshold = 1;
  resilience.breaker.cooldown_ticks = 1u << 30;
  resilience.on_unreachable = DeferredPolicy::kReject;
  auto mgr = MakeManager(resilience);
  Seed(mgr.get());
  FaultInjector injector(FaultConfig{});
  injector.ForceOutage(true);
  mgr->site().set_fault_injector(&injector);
  // Trip the breaker once so every timed update takes the fast path.
  CCPI_CHECK(
      mgr->ApplyUpdate(Update::Insert("reserved", {V("p0"), V(500), V(520)}))
          .ok());
  Rng rng(3);
  for (auto _ : state) {
    int64_t lo = rng.Range(350, 900);
    auto reports = mgr->ApplyUpdate(Update::Insert(
        "reserved",
        {V("p" + std::to_string(rng.Below(3))), V(lo), V(lo + 20)}));
    CCPI_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["remote_trips"] =
      static_cast<double>(mgr->site().stats().remote_trips);
}
BENCHMARK(BM_UpdateDuringOutageFastFail);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("fault_degradation");
  ccpi::PrintDegradationTable(&harness);
  return harness.RunAndWrite(argc, argv);
}
