// Experiment FIG-6.1 / THM-6.1: the forbidden-intervals complete local test
// as a recursive datalog program. The paper proves no RA expression can do
// this (a k-tuple cover can always be exceeded), so the program of Fig 6.1
// merges intervals recursively. The benchmarks compare three equivalent
// implementations as |L| grows:
//   * the compiled Fig 6.1 datalog program, evaluated semi-naively,
//   * the direct IntervalSet computation (what a hand-written checker does),
//   * the general Theorem 5.2 reduction-containment test.
// All three decide the same relation (asserted during the run).

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>

#include "core/cqc_form.h"
#include "core/icq_compiler.h"
#include "core/local_test.h"
#include "datalog/parser.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Rule FiRule() {
  auto rule = ParseRule("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y");
  CCPI_CHECK(rule.ok());
  return *rule;
}

/// n intervals; `overlapping` tiles them into one covered band, otherwise
/// they are spread with gaps.
Relation MakeLocal(size_t n, bool overlapping, Database* db) {
  Relation local(2);
  for (size_t i = 0; i < n; ++i) {
    int64_t lo = overlapping ? static_cast<int64_t>(2 * i)
                             : static_cast<int64_t>(4 * i);
    Tuple t = {V(lo), V(lo + 3)};
    local.Insert(t);
    CCPI_CHECK(db->Insert("l", t).ok());
  }
  return local;
}

void PrintFig61() {
  std::printf("=== FIG 6.1: the compiled interval program ===\n");
  auto comp = CompileIcq(FiRule(), "l");
  CCPI_CHECK(comp.ok());
  std::printf("constraint: %s\n", FiRule().ToString().c_str());
  std::printf("compiled to %zu rules (basis + recursive merges); the first "
              "few:\n",
              comp->interval_program.rules.size());
  for (size_t i = 0; i < comp->interval_program.rules.size() && i < 4; ++i) {
    std::printf("  %s\n", comp->interval_program.rules[i].ToString().c_str());
  }
  std::printf("  ...\n\n");

  std::printf("agreement of the three implementations (n=24, mixed):\n");
  Database db;
  Relation local = MakeLocal(24, /*overlapping=*/true, &db);
  auto cqc = MakeCqc(FiRule(), "l");
  CCPI_CHECK(cqc.ok());
  struct Probe {
    Tuple t;
    const char* label;
  };
  Probe probes[] = {
      {{V(1), V(40)}, "inside the tiled band"},
      {{V(1), V(60)}, "past the right edge"},
      {{V(-5), V(3)}, "past the left edge"},
      {{V(10), V(10)}, "single point"},
  };
  for (const Probe& probe : probes) {
    auto datalog = IcqLocalTestOnInsert(*comp, db, probe.t);
    auto direct = IcqDirectTestOnInsert(*comp, local, probe.t);
    auto thm52 = CompleteLocalTestOnInsert(*cqc, probe.t, local);
    CCPI_CHECK(datalog.ok() && direct.ok() && thm52.ok());
    CCPI_CHECK(*datalog == *direct && *direct == thm52->outcome);
    std::printf("  insert %-10s (%-22s): %s\n",
                TupleToString(probe.t).c_str(), probe.label,
                OutcomeToString(*datalog));
  }
  std::printf("\n");
}

void BM_Fig61Datalog(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  Relation local = MakeLocal(n, true, &db);
  auto comp = CompileIcq(FiRule(), "l");
  CCPI_CHECK(comp.ok());
  Tuple t = {V(1), V(static_cast<int64_t>(2 * n))};
  for (auto _ : state) {
    auto outcome = IcqLocalTestOnInsert(*comp, db, t);
    CCPI_CHECK(outcome.ok() && *outcome == Outcome::kHolds);
    benchmark::DoNotOptimize(*outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig61Datalog)->RangeMultiplier(2)->Range(4, 32);

void BM_DirectIntervalSet(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  Relation local = MakeLocal(n, true, &db);
  auto comp = CompileIcq(FiRule(), "l");
  CCPI_CHECK(comp.ok());
  Tuple t = {V(1), V(static_cast<int64_t>(2 * n))};
  for (auto _ : state) {
    auto outcome = IcqDirectTestOnInsert(*comp, local, t);
    CCPI_CHECK(outcome.ok() && *outcome == Outcome::kHolds);
    benchmark::DoNotOptimize(*outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_DirectIntervalSet)->RangeMultiplier(2)->Range(4, 4096);

void BM_Theorem52Reduction(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  Relation local = MakeLocal(n, true, &db);
  auto cqc = MakeCqc(FiRule(), "l");
  CCPI_CHECK(cqc.ok());
  Tuple t = {V(1), V(static_cast<int64_t>(2 * n))};
  for (auto _ : state) {
    auto outcome = CompleteLocalTestOnInsert(*cqc, t, local);
    CCPI_CHECK(outcome.ok() && outcome->outcome == Outcome::kHolds);
    benchmark::DoNotOptimize(outcome->outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_Theorem52Reduction)->RangeMultiplier(2)->Range(4, 256);

void BM_Fig61GapWorkload(benchmark::State& state) {
  // Non-covered insert: the program still derives all merged intervals.
  size_t n = static_cast<size_t>(state.range(0));
  Database db;
  Relation local = MakeLocal(n, /*overlapping=*/false, &db);
  auto comp = CompileIcq(FiRule(), "l");
  CCPI_CHECK(comp.ok());
  Tuple t = {V(1), V(static_cast<int64_t>(4 * n))};
  for (auto _ : state) {
    auto outcome = IcqLocalTestOnInsert(*comp, db, t);
    CCPI_CHECK(outcome.ok() && *outcome == Outcome::kUnknown);
    benchmark::DoNotOptimize(*outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig61GapWorkload)->RangeMultiplier(2)->Range(4, 32);

void BM_CompileIcq(benchmark::State& state) {
  // Compilation cost, including the <>-splitting blowup.
  int neqs = static_cast<int>(state.range(0));
  std::string body = "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y";
  for (int i = 0; i < neqs; ++i) body += " & Z <> X";
  auto rule = ParseRule(body);
  CCPI_CHECK(rule.ok());
  for (auto _ : state) {
    auto comp = CompileIcq(*rule, "l");
    CCPI_CHECK(comp.ok());
    benchmark::DoNotOptimize(comp->branches.size());
  }
  state.counters["neq_atoms"] = neqs;
}
BENCHMARK(BM_CompileIcq)->DenseRange(0, 5);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintFig61();
  ccpi::bench::Harness harness("fig61_intervals");
  return harness.RunAndWrite(argc, argv);
}
