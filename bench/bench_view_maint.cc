// Experiment APP-VIEW: application 3 of Section 2 — view maintenance.
// Measures the three refresh tiers of MaterializedView on a join view as
// the base data grows: updates proved irrelevant from the definitions
// (no data touched), incremental delta evaluation (work proportional to
// the tuples involving the update), and full recomputation.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>

#include "datalog/parser.h"
#include "eval/engine.h"
#include "manager/view_maint.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

Program JoinView() {
  auto p = ParseProgram("v(E,D) :- works(E,D) & audited(D) & rank(E,R) & "
                        "R > 3");
  CCPI_CHECK(p.ok());
  Program view = *p;
  view.goal = "v";
  return view;
}

Database BaseData(size_t employees) {
  Rng rng(31);
  Database db;
  for (size_t i = 0; i < employees; ++i) {
    int64_t e = static_cast<int64_t>(i);
    CCPI_CHECK(db.Insert("works", {V(e), V(rng.Range(0, 20))}).ok());
    CCPI_CHECK(db.Insert("rank", {V(e), V(rng.Range(0, 10))}).ok());
  }
  for (int64_t d = 0; d < 20; d += 2) {
    CCPI_CHECK(db.Insert("audited", {V(d)}).ok());
  }
  return db;
}

void PrintTierTable() {
  std::printf("=== APP-VIEW: refresh tiers for a 3-way join view ===\n");
  Program view = JoinView();
  Database db = BaseData(200);
  auto mv = MaterializedView::Create(view, db);
  CCPI_CHECK(mv.ok());
  struct Case {
    Update u;
    const char* label;
  };
  Case cases[] = {
      {Update::Insert("rank", {V(9999), V(1)}), "low-rank insert"},
      {Update::Insert("works", {V(5), V(2)}), "new assignment"},
      {Update::Delete("audited", {V(2)}), "department un-audited"},
      {Update::Insert("unrelated", {V(1)}), "foreign relation"},
  };
  for (const Case& c : cases) {
    auto tier = mv->Apply(c.u);
    CCPI_CHECK(tier.ok());
    std::printf("  %-26s -> %s\n", c.label,
                ViewRefreshTierToString(*tier));
  }
  std::printf("\n");
}

void BM_IncrementalInsert(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Program view = JoinView();
  Database db = BaseData(n);
  auto mv = MaterializedView::Create(view, db);
  CCPI_CHECK(mv.ok());
  int64_t next = 1000000;
  for (auto _ : state) {
    auto tier = mv->Apply(Update::Insert("works", {V(next++ % 50), V(2)}));
    CCPI_CHECK(tier.ok());
    benchmark::DoNotOptimize(*tier);
  }
  state.counters["base"] = static_cast<double>(n);
}
BENCHMARK(BM_IncrementalInsert)->RangeMultiplier(4)->Range(64, 4096);

void BM_FullRecompute(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Program view = JoinView();
  Database db = BaseData(n);
  for (auto _ : state) {
    auto rows = EvaluateGoal(view, db);
    CCPI_CHECK(rows.ok());
    benchmark::DoNotOptimize(rows->size());
  }
  state.counters["base"] = static_cast<double>(n);
}
BENCHMARK(BM_FullRecompute)->RangeMultiplier(4)->Range(64, 4096);

void BM_IrrelevantUpdateDecision(benchmark::State& state) {
  Program view = JoinView();
  Update u = Update::Insert("rank", {V(1), V(1)});  // R=1 fails R>3
  for (auto _ : state) {
    auto verdict = IrrelevantUpdate(view, u);
    CCPI_CHECK(verdict.ok() && *verdict == Outcome::kHolds);
    benchmark::DoNotOptimize(*verdict);
  }
}
BENCHMARK(BM_IrrelevantUpdateDecision);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintTierTable();
  ccpi::bench::Harness harness("view_maint");
  return harness.RunAndWrite(argc, argv);
}
