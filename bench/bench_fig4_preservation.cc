// Experiments FIG-4.1 / FIG-4.2: the class-preservation matrices under
// insertion and deletion, computed by actually rewriting worst-case
// representatives with every encoding and classifying the results. The
// printed "( YES )" cells must be exactly the paper's circled classes —
// eight for insertion, six for deletion (this is asserted, not assumed).
// The benchmarks measure rewrite + classification cost per class.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>

#include "datalog/parser.h"
#include "updates/preservation.h"
#include "updates/rewrite.h"
#include "util/check.h"

namespace ccpi {
namespace {

void PrintMatrices() {
  auto insertion = ComputeInsertionPreservation();
  CCPI_CHECK(insertion.ok());
  std::printf("%s\n", RenderPreservationTable(
                          *insertion,
                          "=== FIG 4.1: classes preserved under insertion "
                          "(paper circles 8) ===")
                          .c_str());
  size_t circled = 0;
  for (const PreservationCell& c : *insertion) circled += c.preserved;
  CCPI_CHECK(circled == 8);

  auto deletion = ComputeDeletionPreservation();
  CCPI_CHECK(deletion.ok());
  std::printf("%s\n", RenderPreservationTable(
                          *deletion,
                          "=== FIG 4.2: classes preserved under deletion "
                          "(paper circles 6) ===")
                          .c_str());
  circled = 0;
  for (const PreservationCell& c : *deletion) circled += c.preserved;
  CCPI_CHECK(circled == 6);
  std::printf("Both matrices match the paper's figures.\n\n");
}

void BM_ComputeInsertionMatrix(benchmark::State& state) {
  for (auto _ : state) {
    auto cells = ComputeInsertionPreservation();
    CCPI_CHECK(cells.ok());
    benchmark::DoNotOptimize(cells->size());
  }
}
BENCHMARK(BM_ComputeInsertionMatrix);

void BM_ComputeDeletionMatrix(benchmark::State& state) {
  for (auto _ : state) {
    auto cells = ComputeDeletionPreservation();
    CCPI_CHECK(cells.ok());
    benchmark::DoNotOptimize(cells->size());
  }
}
BENCHMARK(BM_ComputeDeletionMatrix);

void BM_RewriteInsertHelper(benchmark::State& state) {
  Program c = *ParseProgram("panic :- p(X,Y) & q(Y,Z) & not s(X) & X < Z");
  Update u = Update::Insert("p", {V(1), V(2)});
  for (auto _ : state) {
    auto r = RewriteAfterInsert(c, u);
    CCPI_CHECK(r.ok());
    benchmark::DoNotOptimize(r->rules.size());
  }
}
BENCHMARK(BM_RewriteInsertHelper);

void BM_RewriteDeleteComparisons(benchmark::State& state) {
  // Arity grows: one <>-rule per component.
  size_t arity = static_cast<size_t>(state.range(0));
  std::string args = "X1";
  Tuple t = {V(1)};
  for (size_t i = 2; i <= arity; ++i) {
    args += ",X" + std::to_string(i);
    t.push_back(V(static_cast<int64_t>(i)));
  }
  Program c = *ParseProgram("panic :- p(" + args + ") & q(X1)");
  Update u = Update::Delete("p", t);
  for (auto _ : state) {
    auto r = RewriteAfterDelete(c, u, DeleteEncoding::kComparisons);
    CCPI_CHECK(r.ok());
    benchmark::DoNotOptimize(r->rules.size());
  }
  state.SetLabel("arity=" + std::to_string(arity));
}
BENCHMARK(BM_RewriteDeleteComparisons)->DenseRange(1, 8);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintMatrices();
  ccpi::bench::Harness harness("fig4_preservation");
  return harness.RunAndWrite(argc, argv);
}
