// Experiment THM-5.3: for arithmetic-free CQCs the complete local test is a
// relational algebra expression constructed in time exponential only in the
// constraint — "the test itself can be expressed in relational algebra, so
// it is likely to be within the query language of any database system".
// The benchmarks separate the two costs: compilation (vs constraint size)
// and evaluation (vs |L|), and compare the compiled test's evaluation
// against running the general Theorem 5.2 machinery on the same instance
// (whose union of reductions grows with |L|).

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>
#include <string>

#include "core/cqc_form.h"
#include "core/local_test.h"
#include "core/ra_local_test.h"
#include "datalog/parser.h"
#include "ra/ra_eval.h"
#include "ra/ra_expr.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

/// panic :- l(A1..Ak) & r(A1) & ... & r(Ak): every component feeds the
/// remote predicate; mappings multiply with k.
Rule StarRule(int k) {
  std::string args;
  std::string remotes;
  for (int i = 0; i < k; ++i) {
    if (i > 0) args += ",";
    args += "A" + std::to_string(i);
    remotes += " & r(A" + std::to_string(i) + ")";
  }
  auto rule = ParseRule("panic :- l(" + args + ")" + remotes);
  CCPI_CHECK(rule.ok());
  return *rule;
}

void PrintExpressionTable() {
  std::printf(
      "=== THM 5.3: compiled RA local tests ===\n"
      "constraint: panic :- l(X,Y,Y) & r(Y,Z,X)  (Example 5.4)\n");
  Rule ex54 = *ParseRule("panic :- l(X,Y,Y) & r(Y,Z,X)");
  auto abc = CompileRaLocalTest(ex54, "l", {V("a"), V("b"), V("c")});
  CCPI_CHECK(abc.ok());
  std::printf("  insert (a,b,c): %s\n",
              abc->trivially_holds ? "trivially holds (no unification)"
                                   : "needs a test");
  auto abb = CompileRaLocalTest(ex54, "l", {V("a"), V("b"), V("b")});
  CCPI_CHECK(abb.ok());
  std::printf("  insert (a,b,b): nonempty( %s )\n\n",
              abb->expr->ToString().c_str());

  std::printf("expression growth with constraint size (star family):\n");
  std::printf("%-12s %s\n", "local arity", "compiled expression");
  for (int k = 1; k <= 3; ++k) {
    Rule rule = StarRule(k);
    Tuple t;
    for (int i = 0; i < k; ++i) t.push_back(V(i));
    auto test = CompileRaLocalTest(rule, "l", t);
    CCPI_CHECK(test.ok());
    std::printf("%-12d %s\n", k, test->expr->ToString().c_str());
  }
  std::printf("\n");
}

void BM_CompileRaTest(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Rule rule = StarRule(k);
  Tuple t;
  for (int i = 0; i < k; ++i) t.push_back(V(i));
  for (auto _ : state) {
    auto test = CompileRaLocalTest(rule, "l", t);
    CCPI_CHECK(test.ok());
    benchmark::DoNotOptimize(test->expr);
  }
  state.counters["arity"] = k;
}
BENCHMARK(BM_CompileRaTest)->DenseRange(1, 6);

void BM_EvaluateRaTest(benchmark::State& state) {
  // Evaluation scales with |L| only (one pass of selections).
  size_t n = static_cast<size_t>(state.range(0));
  Rule rule = *ParseRule("panic :- l(X,Y) & r(X,W) & s(W,Y)");
  Database db;
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    CCPI_CHECK(
        db.Insert("l", {V(rng.Range(0, 50)), V(rng.Range(0, 50))}).ok());
  }
  Tuple t = {V(7), V(9)};
  db.FreezeIndexes();  // read phase: indexes + columnar segments built once
  for (auto _ : state) {
    auto outcome = RaLocalTestOnInsert(rule, "l", t, db);
    CCPI_CHECK(outcome.ok());
    benchmark::DoNotOptimize(*outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_EvaluateRaTest)->RangeMultiplier(4)->Range(16, 4096);

void BM_Theorem52OnSameInstance(benchmark::State& state) {
  // The general reduction-containment machinery on the identical
  // arithmetic-free instance: its union has one member per L-tuple, so the
  // containment-mapping work grows with |L| much faster than the RA scan.
  size_t n = static_cast<size_t>(state.range(0));
  Rule rule = *ParseRule("panic :- l(X,Y) & r(X,W) & s(W,Y)");
  auto cqc = MakeCqc(rule, "l");
  CCPI_CHECK(cqc.ok());
  Relation local(2);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    local.Insert({V(rng.Range(0, 50)), V(rng.Range(0, 50))});
  }
  Tuple t = {V(7), V(9)};
  for (auto _ : state) {
    auto outcome = CompleteLocalTestOnInsert(*cqc, t, local);
    CCPI_CHECK(outcome.ok());
    benchmark::DoNotOptimize(outcome->outcome);
  }
  state.counters["|L|"] = static_cast<double>(n);
}
BENCHMARK(BM_Theorem52OnSameInstance)->RangeMultiplier(4)->Range(16, 1024);

/// Two relations of n rows whose join keys hit ~1/64 of the time.
Database JoinInstance(size_t n) {
  Database db;
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    CCPI_CHECK(db.Insert("jl", {V(rng.Range(0, 64)), V(rng.Range(0, 1000))})
                   .ok());
    CCPI_CHECK(db.Insert("jr", {V(rng.Range(0, 64)), V(rng.Range(0, 1000))})
                   .ok());
  }
  return db;
}

void BM_SelectProductEquiJoin(benchmark::State& state) {
  // sigma[#1=#3](jl x jr): the eq condition crosses the product boundary,
  // so the evaluator takes the hash-join path — O(|L| + |R| + matches).
  size_t n = static_cast<size_t>(state.range(0));
  Database db = JoinInstance(n);
  db.FreezeIndexes();  // read phase: the columnar join kernel engages
  RaExprPtr expr = RaExpr::Select(
      RaExpr::Product(RaExpr::Scan("jl", 2), RaExpr::Scan("jr", 2)),
      {RaCondition{RaOperand::Col(0), CmpOp::kEq, RaOperand::Col(2)}});
  for (auto _ : state) {
    auto out = EvalRa(*expr, db);
    CCPI_CHECK(out.ok());
    benchmark::DoNotOptimize(out->size());
  }
  state.counters["rows"] = static_cast<double>(n);
}
BENCHMARK(BM_SelectProductEquiJoin)->RangeMultiplier(4)->Range(64, 4096);

void BM_SelectProductNestedLoop(benchmark::State& state) {
  // The same join written as #1<=#3 & #1>=#3: semantically identical
  // output, but no single eq condition crosses the boundary, so the
  // evaluator materializes the full O(|L| * |R|) product and filters.
  // The gap against BM_SelectProductEquiJoin is the hash-join payoff.
  size_t n = static_cast<size_t>(state.range(0));
  Database db = JoinInstance(n);
  db.FreezeIndexes();
  RaExprPtr expr = RaExpr::Select(
      RaExpr::Product(RaExpr::Scan("jl", 2), RaExpr::Scan("jr", 2)),
      {RaCondition{RaOperand::Col(0), CmpOp::kLe, RaOperand::Col(2)},
       RaCondition{RaOperand::Col(0), CmpOp::kGe, RaOperand::Col(2)}});
  for (auto _ : state) {
    auto out = EvalRa(*expr, db);
    CCPI_CHECK(out.ok());
    benchmark::DoNotOptimize(out->size());
  }
  state.counters["rows"] = static_cast<double>(n);
}
BENCHMARK(BM_SelectProductNestedLoop)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintExpressionTable();
  ccpi::bench::Harness harness("thm53_ra_test");
  return harness.RunAndWrite(argc, argv);
}
