// Experiment FIG-2.1: the twelve constraint-language classes of Fig 2.1,
// reproduced programmatically. Prints the class cube with a representative
// constraint classified into each cell (the classification is computed, not
// transcribed), then benchmarks parsing + classification + evaluation cost
// per class — the "price" of each language feature on a fixed database.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <cstdio>
#include <map>
#include <string>

#include "datalog/language_class.h"
#include "datalog/parser.h"
#include "eval/engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace ccpi {
namespace {

/// A representative constraint for each Fig 2.1 cell, over the employee
/// schema of Section 2.
std::string RepresentativeText(const LanguageClass& cls) {
  std::string extras;
  if (cls.negation) extras += " & not dept(D)";
  if (cls.arithmetic) extras += " & S < 100";
  switch (cls.shape) {
    case Shape::kSingleCQ:
      return "panic :- emp(E,D,S) & emp(E,D2,S2)" + extras + "\n";
    case Shape::kUnionCQ:
      return "panic :- emp(E,D,S) & emp(E,D2,S2)" + extras +
             "\npanic :- emp(E,D,S) & mgr(D,E)" + extras + "\n";
    case Shape::kRecursive:
      return "panic :- boss(E,E)\nboss(E,M) :- emp(E,D,S) & mgr(D,M)" +
             extras + "\nboss(E,F) :- boss(E,G) & boss(G,F)\n";
  }
  return "";
}

Database MakeDb(size_t employees) {
  Rng rng(123);
  Database db;
  for (size_t i = 0; i < employees; ++i) {
    CCPI_CHECK(db.Insert("emp", {V(static_cast<int64_t>(i)),
                                 V(rng.Range(0, 20)), V(rng.Range(0, 300))})
                   .ok());
  }
  for (int64_t d = 0; d < 20; d += 2) {
    CCPI_CHECK(db.Insert("dept", {V(d)}).ok());
    CCPI_CHECK(db.Insert("mgr", {V(d), V(rng.Range(0, 50))}).ok());
  }
  return db;
}

void PrintFig21() {
  std::printf("=== FIG 2.1: classes of logical languages (computed) ===\n");
  std::printf("%-22s %-14s %s\n", "class (computed)", "shape axis",
              "representative");
  for (const LanguageClass& cls : AllLanguageClasses()) {
    Result<Program> p = ParseProgram(RepresentativeText(cls));
    CCPI_CHECK(p.ok());
    LanguageClass computed = SyntacticClass(*p);
    CCPI_CHECK(computed == cls);
    std::string firstline = p->rules[0].ToString();
    std::printf("%-22s %-14s %s%s\n", computed.ToString().c_str(),
                ShapeToString(cls.shape), firstline.c_str(),
                p->rules.size() > 1 ? " (+more rules)" : "");
  }
  std::printf("12 cells verified: classification round-trips for all "
              "combinations.\n\n");
}

void BM_ClassifyAndEvaluate(benchmark::State& state) {
  auto classes = AllLanguageClasses();
  const LanguageClass& cls = classes[static_cast<size_t>(state.range(0))];
  Program program = *ParseProgram(RepresentativeText(cls));
  Database db = MakeDb(500);
  for (auto _ : state) {
    auto violated = IsViolated(program, db);
    CCPI_CHECK(violated.ok());
    benchmark::DoNotOptimize(*violated);
  }
  state.SetLabel(cls.ToString());
}
BENCHMARK(BM_ClassifyAndEvaluate)->DenseRange(0, 11);

void BM_Parse(benchmark::State& state) {
  auto classes = AllLanguageClasses();
  const LanguageClass& cls = classes[static_cast<size_t>(state.range(0))];
  std::string text = RepresentativeText(cls);
  for (auto _ : state) {
    auto p = ParseProgram(text);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetLabel(cls.ToString());
}
BENCHMARK(BM_Parse)->DenseRange(0, 11);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::PrintFig21();
  ccpi::bench::Harness harness("fig21_language_classes");
  return harness.RunAndWrite(argc, argv);
}
