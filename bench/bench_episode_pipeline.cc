// Experiment PIPE-1: wall-clock throughput of the pipelined episode
// scheduler. The workload streams K tier-3 re-check episodes — constraint
// k joins local l<k> against remote r<k>, so every episode must consult a
// cold remote predicate — through managers at pipeline depth 1/2/4/8, with
// the simulated remote round trip costing trip_latency_us of real time.
// Depth 1 pays the trips one after another on the commit thread; depth N
// overlaps them during speculation on the checker pool, which is exactly
// where the speedup comes from (the machine may have a single core: the
// overlapped time is simulated WAN latency, not CPU).
//
// Two conflict regimes per thread count:
//   low   each update writes its own local predicate, so in-flight
//         speculations are (almost) never invalidated — the depth>1 rows
//         must show speedup_vs_depth1 >= 1, and >= 2 at depth >= 4
//         (contract-checked by tools/check_bench_json.py)
//   high  every update writes the one predicate every affected check
//         reads, so speculation conflicts, retries, and the serial
//         fallback dominate — the row documents graceful degradation,
//         not speedup
//
// Every row also records the pipeline accounting, which must balance:
// admitted == committed + retried_commits, where retried_commits counts
// episodes that could not retire from speculation (conflict re-runs plus
// unspeculated serial-fallback admissions). Depth-1 rows run the plain
// serial path (no pipeline counters exist) and synthesize the trivial
// accounting. Each run is also diffed against the depth-1 stats — the
// scheduler must not move a single verdict.

#include <benchmark/benchmark.h>

#include "bench_harness.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "manager/constraint_manager.h"
#include "util/check.h"

namespace ccpi {
namespace {

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// K join constraints `panic :- l<k>(X) & r<k>(X)` over K disjoint
/// local/remote predicate pairs; each r<k> is seeded with rows that never
/// match a streamed insert, so every re-check verifies remotely and
/// applies. The seed is deep enough that the low-conflict stream's
/// remote-churn deletes never run dry.
std::unique_ptr<ConstraintManager> MakeManager(size_t constraints,
                                               size_t threads, size_t depth,
                                               uint64_t trip_latency_us) {
  std::set<std::string> locals;
  for (size_t k = 0; k < constraints; ++k) {
    locals.insert("l" + std::to_string(k));
  }
  CostModel costs;
  costs.trip_latency_us = trip_latency_us;
  auto mgr = std::make_unique<ConstraintManager>(
      locals, costs, ResilienceConfig{}, ParallelConfig{threads},
      RemoteCacheConfig{}, BudgetConfig{}, TopologyConfig{},
      PlanCacheConfig{}, PipelineConfig{depth});
  for (size_t k = 0; k < constraints; ++k) {
    std::string ks = std::to_string(k);
    auto p = ParseProgram("panic :- l" + ks + "(X) & r" + ks + "(X)");
    CCPI_CHECK(p.ok());
    CCPI_CHECK(mgr->AddConstraint("join" + ks, *p).ok());
    for (int d = 0; d < 16; ++d) {
      CCPI_CHECK(mgr->site().db().Insert("r" + ks, {V(d)}).ok());
    }
  }
  return mgr;
}

/// The episode stream.
///
/// Low conflict is a *re-check stream with remote churn*, the paper's
/// motivating scenario: blocks of K deletes — one existing row out of
/// each r<k> — alternate with blocks of K inserts into each l<k>. The
/// deletes are resolved db-free (removing a body tuple preserves the
/// constraint) but bump r<k>'s content version, so the insert block's
/// tier-3 re-checks really are cold: the remote cache cannot absorb them
/// and every re-check pays one simulated round trip. Block order keeps
/// the pipeline clean at any depth <= K: r<k>'s delete commits before the
/// episode reading r<k> is admitted, so staged fetches validate, and a
/// depth-sized window of writes never touches a speculation's read set.
///
/// High conflict: every episode writes the one predicate every in-flight
/// speculation read, the worst case for the conflict detector.
std::vector<Update> MakeStream(size_t episodes, size_t constraints,
                               bool high_conflict) {
  std::vector<Update> out;
  std::vector<int> next_delete(constraints, 0);
  for (size_t i = 0; i < episodes; ++i) {
    if (high_conflict) {
      out.push_back(Update::Insert("l0", {V(static_cast<int64_t>(1000 + i))}));
      continue;
    }
    const size_t k = i % constraints;
    const std::string ks = std::to_string(k);
    const bool delete_block = (i / constraints) % 2 == 0;
    if (delete_block) {
      out.push_back(Update::Delete("r" + ks, {V(next_delete[k]++)}));
    } else {
      out.push_back(
          Update::Insert("l" + ks, {V(static_cast<int64_t>(1000 + i))}));
    }
  }
  return out;
}

struct StreamPoint {
  double ns = 0;
  double admitted = 0;
  double committed = 0;
  double conflicts = 0;
  double unspeculated = 0;
  ManagerStats stats;
};

StreamPoint RunStream(size_t depth, size_t threads, bool high_conflict,
                      size_t episodes, uint64_t trip_latency_us) {
  // Both regimes run K=8 constraints: big enough that a depth-8 window of
  // low-conflict writes stays on distinct predicates, small enough that
  // phase-1 CPU (which scans every constraint per episode) does not drown
  // the round-trip latency the pipeline exists to hide.
  const size_t constraints = 8;
  std::unique_ptr<ConstraintManager> mgr =
      MakeManager(constraints, threads, depth, trip_latency_us);
  std::vector<Update> stream =
      MakeStream(episodes, constraints, high_conflict);
  StreamPoint point;
  double t0 = NowNs();
  if (depth > 1) {
    for (const Update& u : stream) mgr->ApplyUpdateAsync(u);
    for (auto& reports : mgr->Drain()) CCPI_CHECK(reports.ok());
  } else {
    for (const Update& u : stream) CCPI_CHECK(mgr->ApplyUpdate(u).ok());
  }
  point.ns = NowNs() - t0;
  if (depth > 1) {
    auto counter = [&](const char* name) {
      return static_cast<double>(mgr->metrics().GetCounter(name)->value());
    };
    point.admitted = counter("manager.pipeline.admitted");
    point.committed = counter("manager.pipeline.committed");
    point.conflicts = counter("manager.pipeline.conflicts");
    point.unspeculated = counter("manager.pipeline.unspeculated");
  } else {
    // The serial path books no pipeline counters; the trivial accounting
    // keeps the artifact schema uniform across rows.
    point.admitted = static_cast<double>(episodes);
    point.committed = static_cast<double>(episodes);
  }
  point.stats = mgr->stats();
  return point;
}

void CheckSameVerdicts(const ManagerStats& a, const ManagerStats& b) {
  CCPI_CHECK(a.resolved_by == b.resolved_by);
  CCPI_CHECK(a.violations == b.violations);
  CCPI_CHECK(a.deferred == b.deferred);
}

void RunSweep(ccpi::bench::Harness* harness, bool quick) {
  const size_t episodes = quick ? 32 : 96;
  const uint64_t trip_latency_us = 400;
  std::printf("=== PIPE-1: pipelined episodes vs. serial checking ===\n");
  std::printf("%-22s %12s %12s %10s %10s %10s %10s\n", "stream", "ns_total",
              "eps/sec", "speedup", "committed", "conflicts", "serial");
  for (bool high_conflict : {false, true}) {
    const char* regime = high_conflict ? "high" : "low";
    for (size_t threads : {size_t{4}, size_t{8}}) {
      StreamPoint base =
          RunStream(1, threads, high_conflict, episodes, trip_latency_us);
      for (size_t depth : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        StreamPoint p =
            depth == 1 ? base
                       : RunStream(depth, threads, high_conflict, episodes,
                                   trip_latency_us);
        CheckSameVerdicts(base.stats, p.stats);
        double retried = p.conflicts + p.unspeculated;
        CCPI_CHECK(p.admitted == p.committed + retried);
        double eps_per_sec =
            p.ns > 0 ? static_cast<double>(episodes) * 1e9 / p.ns : 0;
        double speedup = p.ns > 0 ? base.ns / p.ns : 0;
        std::printf("%-22s %12.0f %12.0f %9.2fx %10.0f %10.0f %10.0f\n",
                    (std::string(regime) + "/t" + std::to_string(threads) +
                     "/d" + std::to_string(depth))
                        .c_str(),
                    p.ns, eps_per_sec, speedup, p.committed, p.conflicts,
                    p.unspeculated);

        char point_name[64];
        std::snprintf(point_name, sizeof(point_name), "pipeline/%s/t%zu/d%zu",
                      regime, threads, depth);
        harness->Sweep(
            point_name,
            {{"depth", static_cast<double>(depth)},
             {"threads", static_cast<double>(threads)},
             {"high_conflict", high_conflict ? 1.0 : 0.0},
             {"episodes", static_cast<double>(episodes)},
             {"trip_latency_us", static_cast<double>(trip_latency_us)},
             {"ns_total", p.ns},
             {"episodes_per_sec", eps_per_sec},
             {"speedup_vs_depth1", speedup},
             {"admitted", p.admitted},
             {"committed", p.committed},
             {"conflicts", p.conflicts},
             {"retried_commits", retried}});
      }
    }
  }
  std::printf("\n");
}

/// Timed loop: one 16-episode low-conflict stream per iteration, at the
/// given depth. The counter of record is the per-episode wall time.
void BM_EpisodeStream(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  const size_t episodes = 16;
  for (auto _ : state) {
    StreamPoint p = RunStream(depth, 4, false, episodes, 50);
    benchmark::DoNotOptimize(p.ns);
  }
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["episodes_per_stream"] = static_cast<double>(episodes);
}
BENCHMARK(BM_EpisodeStream)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ccpi

int main(int argc, char** argv) {
  ccpi::bench::Harness harness("episode_pipeline");
  const char* quick_env = std::getenv("CCPI_BENCH_QUICK");
  bool quick = quick_env != nullptr && *quick_env != '\0' && *quick_env != '0';
  ccpi::RunSweep(&harness, quick);
  return harness.RunAndWrite(argc, argv);
}
