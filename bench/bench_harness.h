#ifndef CCPI_BENCH_BENCH_HARNESS_H_
#define CCPI_BENCH_BENCH_HARNESS_H_

// Shared main() harness of the bench_* binaries: runs google-benchmark as
// usual (console output unchanged) while capturing every timed run and any
// number of "sweep" points (rows of the reproduced tables, measured outside
// the timing loop), then writes the machine-readable artifact
// BENCH_<name>.json. Schema documented in docs/observability.md and
// enforced by tools/check_bench_json.py.
//
// Environment knobs:
//   CCPI_BENCH_QUICK=1    append --benchmark_min_time=0.01 (CI smoke runs)
//   CCPI_BENCH_OUT_DIR=D  write BENCH_<name>.json under D (default: cwd)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace ccpi {
namespace bench {

/// One entry of the artifact's "points" array: either a captured
/// google-benchmark run (kind "benchmark") or a table row recorded by the
/// binary itself (kind "sweep"; timing fields unused).
struct BenchPoint {
  std::string kind;
  std::string name;
  int64_t iterations = 0;
  double real_time_ns = 0;
  double cpu_time_ns = 0;
  /// Extra measurements: benchmark user counters, or whatever the sweep
  /// recorded (remote trips, tuples moved, costs, ...).
  std::vector<std::pair<std::string, double>> metrics;
};

class Harness {
 public:
  explicit Harness(std::string name) : name_(std::move(name)) {}

  /// Records one sweep point (a row of the binary's reproduced table).
  void Sweep(std::string point_name,
             std::vector<std::pair<std::string, double>> metrics) {
    BenchPoint p;
    p.kind = "sweep";
    p.name = std::move(point_name);
    p.metrics = std::move(metrics);
    points_.push_back(std::move(p));
  }

  /// Runs the registered benchmarks (honouring the usual --benchmark_*
  /// flags plus the CCPI_BENCH_QUICK env knob) and writes the artifact.
  /// Returns the process exit code.
  int RunAndWrite(int argc, char** argv) {
    std::vector<char*> args(argv, argv + argc);
    std::string quick_flag = "--benchmark_min_time=0.01";
    bool user_min_time = false;
    bool color = true;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--benchmark_min_time", 0) == 0) user_min_time = true;
      // A hand-constructed ConsoleReporter ignores --benchmark_color, so
      // honour it here (any value but "true"/"yes"/"1" disables colour).
      if (arg.rfind("--benchmark_color=", 0) == 0) {
        std::string v = arg.substr(std::string("--benchmark_color=").size());
        color = v == "true" || v == "yes" || v == "1";
      }
    }
    const char* quick = std::getenv("CCPI_BENCH_QUICK");
    quick_ = quick != nullptr && *quick != '\0' && *quick != '0';
    if (quick_ && !user_min_time) args.push_back(quick_flag.data());

    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    CapturingReporter reporter(
        this, color ? benchmark::ConsoleReporter::OO_Defaults
                    : benchmark::ConsoleReporter::OO_Tabular);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return WriteArtifact() ? 0 : 1;
  }

 private:
  /// Prints the normal console report and captures each per-iteration run
  /// (aggregates like mean/stddev are console-only) as a point.
  class CapturingReporter : public benchmark::ConsoleReporter {
   public:
    CapturingReporter(Harness* harness, OutputOptions opts)
        : benchmark::ConsoleReporter(opts), harness_(harness) {}

    void ReportRuns(const std::vector<Run>& runs) override {
      benchmark::ConsoleReporter::ReportRuns(runs);
      for (const Run& run : runs) {
        if (run.error_occurred) continue;
        if (run.run_type != Run::RT_Iteration) continue;
        BenchPoint p;
        p.kind = "benchmark";
        p.name = run.benchmark_name();
        p.iterations = static_cast<int64_t>(run.iterations);
        double iters =
            run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
        p.real_time_ns = run.real_accumulated_time * 1e9 / iters;
        p.cpu_time_ns = run.cpu_accumulated_time * 1e9 / iters;
        for (const auto& [counter_name, counter] : run.counters) {
          p.metrics.emplace_back(counter_name,
                                 static_cast<double>(counter));
        }
        harness_->points_.push_back(std::move(p));
      }
    }

   private:
    Harness* harness_;
  };

  bool WriteArtifact() const {
    const char* dir = std::getenv("CCPI_BENCH_OUT_DIR");
    std::string path = (dir != nullptr && *dir != '\0')
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench harness: cannot open %s\n", path.c_str());
      return false;
    }
    out << ToJson();
    out.flush();
    if (!out) {
      std::fprintf(stderr, "bench harness: short write to %s\n",
                   path.c_str());
      return false;
    }
    std::fprintf(stderr, "bench artifact: %zu points -> %s\n",
                 points_.size(), path.c_str());
    return true;
  }

  std::string ToJson() const {
    std::string j = "{\"schema_version\": 1, \"name\": ";
    obs::AppendJsonString(name_, &j);
    j += ", \"env\": {\"quick\": ";
    j += quick_ ? "true" : "false";
    j += ", \"compiler\": ";
#if defined(__VERSION__)
    obs::AppendJsonString(__VERSION__, &j);
#else
    j += "\"unknown\"";
#endif
    j += ", \"build\": ";
#ifdef NDEBUG
    j += "\"release\"";
#else
    j += "\"debug\"";
#endif
    j += "}, \"points\": [";
    bool first = true;
    for (const BenchPoint& p : points_) {
      j += first ? "\n" : ",\n";
      first = false;
      j += "{\"kind\": ";
      obs::AppendJsonString(p.kind, &j);
      j += ", \"name\": ";
      obs::AppendJsonString(p.name, &j);
      if (p.kind == "benchmark") {
        j += ", \"iterations\": " + std::to_string(p.iterations);
        j += ", \"real_time_ns\": " + obs::JsonNumber(p.real_time_ns);
        j += ", \"cpu_time_ns\": " + obs::JsonNumber(p.cpu_time_ns);
      }
      j += ", \"metrics\": {";
      bool first_metric = true;
      for (const auto& [metric_name, value] : p.metrics) {
        if (!first_metric) j += ", ";
        first_metric = false;
        obs::AppendJsonString(metric_name, &j);
        j += ": " + obs::JsonNumber(value);
      }
      j += "}}";
    }
    j += "\n]}\n";
    return j;
  }

  std::string name_;
  bool quick_ = false;
  std::vector<BenchPoint> points_;
};

}  // namespace bench
}  // namespace ccpi

#endif  // CCPI_BENCH_BENCH_HARNESS_H_
