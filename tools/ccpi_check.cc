// ccpi_check: run a constraint-checking workload from a script file.
//
//   ccpi_check workload.ccpi
//   ccpi_check --export-souffle workload.ccpi   # emit a .dl translation
//
// The script declares local predicates, named constraints (in the paper's
// datalog syntax), initial facts, and an insert/delete stream; the tool
// replays the stream through the tiered constraint manager and reports
// which updates were rejected, which tier resolved each check, and the
// simulated local/remote access cost. With --export-souffle it instead
// prints the constraints and facts as a Souffle program (one .decl/.output
// block per constraint). See src/manager/script.h for the format and
// examples/workloads/ for samples.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "datalog/souffle_export.h"
#include "manager/script.h"

int main(int argc, char** argv) {
  bool export_souffle = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--export-souffle") {
      export_souffle = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s [--export-souffle] <workload.ccpi>\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  ccpi::Result<ccpi::Script> script = ccpi::ParseScript(text.str());
  if (!script.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 script.status().ToString().c_str());
    return 1;
  }
  if (export_souffle) {
    for (const auto& [name, program] : script->constraints) {
      std::printf("// constraint %s\n", name.c_str());
      ccpi::Result<std::string> dl =
          ccpi::ExportSouffle(program, &script->initial);
      if (!dl.ok()) {
        std::fprintf(stderr, "export error for %s: %s\n", name.c_str(),
                     dl.status().ToString().c_str());
        return 1;
      }
      std::fputs(dl->c_str(), stdout);
      std::printf("\n");
    }
    return 0;
  }
  ccpi::Result<ccpi::ScriptReport> report = ccpi::RunScript(*script);
  if (!report.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->text.c_str(), stdout);
  std::printf("%zu applied, %zu rejected\n", report->updates_applied,
              report->updates_rejected);
  return report->updates_rejected == 0 ? 0 : 3;
}
