// ccpi_check: run a constraint-checking workload from a script file.
//
//   ccpi_check workload.ccpi
//   ccpi_check --export-souffle workload.ccpi   # emit a .dl translation
//   ccpi_check --fault-rate=0.2 --stats workload.ccpi
//   ccpi_check --trace-out=run.trace.json --metrics-out=run.metrics.json \
//              workload.ccpi
//
// The script declares local predicates, named constraints (in the paper's
// datalog syntax), initial facts, and an insert/delete stream; the tool
// replays the stream through the tiered constraint manager and reports
// which updates were rejected, which tier resolved each check, and the
// simulated local/remote access cost. With --export-souffle it instead
// prints the constraints and facts as a Souffle program (one .decl/.output
// block per constraint). See src/manager/script.h for the format and
// examples/workloads/ for samples.
//
// stdout carries the machine-parseable per-update log (one verb line per
// update plus the final counts line); the human-oriented summary (tier
// table, access costs, --stats block) goes to stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "datalog/souffle_export.h"
#include "manager/script.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

constexpr const char kUsage[] =
    "usage: ccpi_check [flags] <workload.ccpi>\n"
    "\n"
    "  --export-souffle        print a Souffle .dl translation and exit\n"
    "  --stats                 print retry/deferred/breaker statistics\n"
    "                          (to stderr, with the rest of the summary)\n"
    "  --threads=N             checker threads for the per-constraint\n"
    "                          fan-out (default 1 = sequential; reports\n"
    "                          are identical at any thread count)\n"
    "  --remote-cache=on|off   remote-read snapshot cache (default on;\n"
    "                          semantically invisible — only the access\n"
    "                          accounting changes)\n"
    "  --plan-cache=on|off     compiled local-test plan cache (default on;\n"
    "                          semantically invisible — reports and stats\n"
    "                          are byte-identical either way); overrides\n"
    "                          the script's plan_cache directive\n"
    "  --columnar=on|off       columnar read path: frozen relations carry\n"
    "                          a columnar segment that the RA scan/join\n"
    "                          kernels use (default on; semantically\n"
    "                          invisible — reports and stats are\n"
    "                          byte-identical either way)\n"
    "  --pipeline-depth=N      episode pipeline depth (default 1 = serial;\n"
    "                          N>1 speculates check phases ahead while\n"
    "                          commits stay serialized in admission order,\n"
    "                          so stdout is byte-identical at any depth);\n"
    "                          overrides the script's pipeline directive\n"
    "\n"
    "Fault injection (simulated remote-site failures):\n"
    "  --fault-rate=P          per-trip transient failure probability [0,1]\n"
    "  --fault-timeout-rate=P  per-trip timeout probability [0,1]\n"
    "  --fault-outage=A:B      hard outage for remote trips A..B-1\n"
    "                          (repeatable)\n"
    "  --fault-seed=N          RNG seed of the failure schedule (default 1)\n"
    "  --fault-reject          refuse undecided updates instead of applying\n"
    "                          them optimistically with a deferred re-check\n"
    "\n"
    "Topology (N remote sites, see docs/distsim.md):\n"
    "  --sites=N               number of remote fault domains (default 1);\n"
    "                          each site owns its own breaker, cache, and\n"
    "                          failure schedule, and checks touching only\n"
    "                          healthy sites keep completing during a\n"
    "                          single-site outage\n"
    "  --placement=p:0,q:1     pin remote predicates to sites; unpinned\n"
    "                          predicates hash to a site deterministically\n"
    "  --site-fault-rate=S:P   per-site override of --fault-rate\n"
    "  --site-fault-timeout-rate=S:P\n"
    "                          per-site override of --fault-timeout-rate\n"
    "  --site-fault-outage=S:A:B\n"
    "                          outage for site S's trips A..B-1 (repeatable)\n"
    "  --site-fault-seed=S:N   per-site override of the derived seed\n"
    "  --site-latency=S:fixed:U | S:uniform:LO:HI | S:twopoint:LO:HI:P\n"
    "                          per-site trip-latency model (microseconds,\n"
    "                          all >= 1, LO <= HI; twopoint draws HI with\n"
    "                          probability P, else LO; draws are\n"
    "                          deterministic per seed; repeatable)\n"
    "  --hedge-after=N         hedge a batched remote read whose drawn\n"
    "                          latency exceeds N x the site's observed\n"
    "                          EWMA with one deterministic backup trip\n"
    "                          (0 = off, default; each issued hedge bills\n"
    "                          one extra trip, tuples are counted once)\n"
    "  --domains=NAME:S0+S1,...\n"
    "                          correlated failure domains; a site may\n"
    "                          belong to at most one (replaces the\n"
    "                          script's domain directives wholesale)\n"
    "  --domain-outage=NAME:A:B\n"
    "                          outage for trips A..B of every member site\n"
    "                          of NAME (repeatable; implies fault\n"
    "                          injection)\n"
    "\n"
    "Execution budgets and overload control (see docs/budgets.md):\n"
    "  --deadline-ms=N         wall-clock budget per update episode; checks\n"
    "                          that would run past it are shed to the\n"
    "                          deferred queue (0 = no deadline, default)\n"
    "  --max-fixpoint-rounds=N per-check cap on fixpoint rounds\n"
    "                          (0 = unlimited, default)\n"
    "  --max-derived-tuples=N  per-check cap on derived tuples\n"
    "                          (0 = unlimited, default)\n"
    "  --deferred-queue-cap=N  bound on queued deferred re-checks\n"
    "                          (0 = unbounded, default)\n"
    "  --overflow-policy=P     reject-update | shed-oldest | block-recheck:\n"
    "                          what to do when the queue cap is hit\n"
    "                          (default reject-update)\n"
    "\n"
    "Observability:\n"
    "  --trace-out=FILE        write a Chrome trace-event JSON of the run\n"
    "                          (load in chrome://tracing or ui.perfetto.dev)\n"
    "  --metrics-out=FILE      write the metrics-registry dump as JSON\n"
    "                          (counters, gauges, latency histograms)\n"
    "\n"
    "Output streams: stdout gets the per-update log and the final counts\n"
    "line; stderr gets the tier/access summary and --stats block.\n"
    "\n"
    "Exit codes:\n"
    "  0  all updates verified, nothing pending\n"
    "  1  parse or internal error\n"
    "  2  usage or I/O error\n"
    "  3  at least one constraint violation (including late-detected\n"
    "     violations found when a deferred check was finally re-verified)\n"
    "  4  no violation, but some checks are still deferred pending the\n"
    "     remote site, or updates were refused under --fault-reject\n"
    "  5  no violation, but the execution budget shed checks, refused an\n"
    "     update at the queue cap, or dropped queued entries (only possible\n"
    "     when a budget flag is set)\n";

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool export_souffle = false;
  const char* path = nullptr;
  std::string trace_out;
  std::string metrics_out;
  ccpi::ScriptOptions options;
  bool flags_ok = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::string(arg) == "--help" || std::string(arg) == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (std::string(arg) == "--export-souffle") {
      export_souffle = true;
    } else if (ParseStringFlag(arg, "--trace-out", &trace_out)) {
    } else if (ParseStringFlag(arg, "--metrics-out", &metrics_out)) {
    } else {
      // Everything configuring the run itself goes through the shared
      // strict parser: a recognized flag with a malformed value (e.g.
      // --threads=abc) is a hard usage error, never a silent default.
      bool matched = false;
      ccpi::Status st = ccpi::ApplyScriptFlag(arg, &options, &matched);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.message().c_str());
        flags_ok = false;
      } else if (!matched) {
        if (arg[0] == '-' && arg[1] == '-') {
          std::fprintf(stderr, "unknown flag %s\n", arg);
          flags_ok = false;
        } else {
          path = arg;
        }
      }
    }
  }
  {
    ccpi::Status st = ccpi::ValidateScriptOptions(options);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.message().c_str());
      flags_ok = false;
    }
  }
  if (path == nullptr || !flags_ok) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  ccpi::Result<ccpi::Script> script = ccpi::ParseScript(text.str());
  if (!script.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 script.status().ToString().c_str());
    return 1;
  }
  if (export_souffle) {
    for (const auto& [name, program] : script->constraints) {
      std::printf("// constraint %s\n", name.c_str());
      ccpi::Result<std::string> dl =
          ccpi::ExportSouffle(program, &script->initial);
      if (!dl.ok()) {
        std::fprintf(stderr, "export error for %s: %s\n", name.c_str(),
                     dl.status().ToString().c_str());
        return 1;
      }
      std::fputs(dl->c_str(), stdout);
      std::printf("\n");
    }
    return 0;
  }

  // Observability sinks: tracing records one span per manager/eval/distsim
  // operation; metrics timing fills the latency histograms. Both are off
  // (one atomic branch per site) unless requested.
  ccpi::obs::TraceRecorder recorder;
  if (!trace_out.empty()) recorder.Install();
  if (!metrics_out.empty() || !trace_out.empty()) {
    ccpi::obs::SetTimingEnabled(true);
  }
  options.collect_metrics = !metrics_out.empty();

  ccpi::Result<ccpi::ScriptReport> report = ccpi::RunScript(*script, options);
  if (!report.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  recorder.Uninstall();

  std::fputs(report->log_text.c_str(), stdout);
  std::fputs(report->summary_text.c_str(), stderr);
  std::printf("%zu applied, %zu rejected, %zu deferred (%zu still pending)\n",
              report->updates_applied, report->updates_rejected,
              report->updates_deferred, report->deferred_pending);
  if (report->budget_armed) {
    // Machine-parseable budget accounting, printed only for budgeted runs
    // so unbudgeted stdout stays byte-identical to earlier releases.
    std::printf("budget: %zu shed, %zu exhausted, %zu dropped\n",
                report->shed_checks, report->budget_exhausted,
                report->deferred_dropped);
  }

  if (!trace_out.empty()) {
    ccpi::Status st = recorder.WriteChromeJson(trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write error: %s\n", st.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "trace: %zu spans -> %s\n", recorder.size(),
                 trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (!WriteFile(metrics_out, report->metrics_json)) return 2;
    std::fprintf(stderr, "metrics -> %s\n", metrics_out.c_str());
  }

  // Violations (immediate or late-detected) dominate; then budget
  // exhaustion (the run was cut short, so "no violation" is qualified);
  // then checks still pending on the remote site — or updates refused
  // because it was unreachable — as their own signal.
  if (report->violations > 0) return 3;
  if (report->shed_checks > 0 || report->budget_exhausted > 0 ||
      report->deferred_dropped > 0) {
    return 5;
  }
  if (report->deferred_pending > 0 || report->updates_rejected > 0) return 4;
  return 0;
}
