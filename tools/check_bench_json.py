#!/usr/bin/env python3
"""Validates BENCH_*.json artifacts emitted by bench/bench_harness.h.

Usage: check_bench_json.py FILE [FILE...]

Checks each file against the schema (version 1) described in
docs/observability.md:

  {
    "schema_version": 1,
    "name": str,
    "env": {"quick": bool, ...},
    "points": [
      {"kind": "benchmark", "name": str, "iterations": int,
       "real_time_ns": num, "cpu_time_ns": num, "metrics": {str: num}},
      {"kind": "sweep", "name": str, "metrics": {str: num}},
      ...
    ]
  }

Exits 0 when every file validates, 1 otherwise (one line per problem).
"""

import json
import numbers
import sys


def fail(path, msg, problems):
    problems.append(f"{path}: {msg}")


def check_point(path, i, point, problems):
    where = f"points[{i}]"
    if not isinstance(point, dict):
        fail(path, f"{where} is not an object", problems)
        return
    kind = point.get("kind")
    if kind not in ("benchmark", "sweep"):
        fail(path, f"{where}.kind is {kind!r}, want 'benchmark' or 'sweep'",
             problems)
        return
    name = point.get("name")
    if not isinstance(name, str) or not name:
        fail(path, f"{where}.name missing or empty", problems)
    metrics = point.get("metrics")
    if not isinstance(metrics, dict):
        fail(path, f"{where}.metrics missing or not an object", problems)
    else:
        for key, value in metrics.items():
            if not isinstance(value, numbers.Real) or isinstance(value, bool):
                fail(path, f"{where}.metrics[{key!r}] is not a number",
                     problems)
    if kind == "benchmark":
        iterations = point.get("iterations")
        if not isinstance(iterations, int) or isinstance(iterations, bool) \
                or iterations <= 0:
            fail(path, f"{where}.iterations missing or not a positive int",
                 problems)
        for field in ("real_time_ns", "cpu_time_ns"):
            value = point.get(field)
            if not isinstance(value, numbers.Real) or isinstance(value, bool):
                fail(path, f"{where}.{field} missing or not a number",
                     problems)
            elif value < 0:
                fail(path, f"{where}.{field} is negative", problems)


# Artifact-specific requirements, keyed by the artifact's "name". The
# remote_cache sweep is the acceptance evidence of the snapshot cache, so
# its locality rows and their metric keys are part of the contract: a
# refactor that silently drops a row or renames a metric must fail CI.
REMOTE_CACHE_LOCALITIES = ("f0.00", "f0.10", "f0.50", "f1.00")
REMOTE_CACHE_METRICS = (
    "locality",
    "constraints",
    "updates",
    "remote_trips_off",
    "remote_trips_on",
    "trip_reduction",
    "cache_hits",
    "cached_tuples",
    "sim_cost_off",
    "sim_cost_on",
    "ns_per_update_off",
    "ns_per_update_on",
)


# The overload sweep is the acceptance evidence of execution budgets:
# budgeted rows must exist next to their unbudgeted baselines, each
# carrying the full accounting so a regression that stops shedding (or
# stops completing) is visible in CI.
OVERLOAD_ROWS = (
    "overload/L8/d0",
    "overload/L8/d2",
    "overload/L32/d0",
    "overload/L32/d2",
    "overload/L32/rounds4",
)
OVERLOAD_METRICS = (
    "load",
    "deadline_ms",
    "admitted",
    "completed",
    "shed",
    "goodput_per_sec",
    "shed_rate",
    "p50_check_ns",
    "p99_check_ns",
)


def check_overload(path, doc, problems):
    sweeps = [p for p in doc.get("points", [])
              if isinstance(p, dict) and p.get("kind") == "sweep"
              and isinstance(p.get("name"), str)]
    names = {p["name"] for p in sweeps}
    for row in OVERLOAD_ROWS:
        if row not in names:
            fail(path, f"overload: missing sweep row {row!r}", problems)
    for point in sweeps:
        metrics = point.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by check_point
        for key in OVERLOAD_METRICS:
            if key not in metrics:
                fail(path,
                     f"overload: sweep {point['name']!r} missing "
                     f"metric {key!r}", problems)
        admitted = metrics.get("admitted")
        completed = metrics.get("completed")
        shed = metrics.get("shed")
        if all(isinstance(v, numbers.Real) and not isinstance(v, bool)
               for v in (admitted, completed, shed)):
            if admitted != completed + shed:
                fail(path,
                     f"overload: sweep {point['name']!r} accounting does "
                     f"not balance (admitted {admitted} != completed "
                     f"{completed} + shed {shed})", problems)


def check_remote_cache(path, doc, problems):
    sweeps = [p for p in doc.get("points", [])
              if isinstance(p, dict) and p.get("kind") == "sweep"
              and isinstance(p.get("name"), str)]
    for locality in REMOTE_CACHE_LOCALITIES:
        rows = [p for p in sweeps if f"/{locality}/" in p["name"]]
        if not rows:
            fail(path, f"remote_cache: no locality sweep row for {locality}",
                 problems)
    for point in sweeps:
        metrics = point.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by check_point
        for key in REMOTE_CACHE_METRICS:
            if key not in metrics:
                fail(path,
                     f"remote_cache: sweep {point['name']!r} missing "
                     f"metric {key!r}", problems)


# The topology sweep is the acceptance evidence of the N-site sharded
# distsim: batching rows pin the per-site trip coalescing, outage rows pin
# partial degradation and the recovery protocol (deferred drain, site
# recovery events, poisoned-cache revalidation, nothing pending).
TOPOLOGY_ROWS = (
    "topology/batch/s1",
    "topology/batch/s2",
    "topology/batch/s4",
    "topology/outage/s1/c0",
    "topology/outage/s1/c1",
    "topology/outage/s2/c0",
    "topology/outage/s2/c1",
    "topology/outage/s4/c0",
    "topology/outage/s4/c1",
    "topology/latency/s4/neutral",
    "topology/latency/s4/skew/unhedged",
    "topology/latency/s4/skew/hedged",
)
TOPOLOGY_BATCH_METRICS = (
    "sites",
    "remote_trips",
    "cache_hits",
    "remote_tuples",
    "cost",
)
TOPOLOGY_OUTAGE_METRICS = (
    "sites",
    "correlation",
    "deferred",
    "fast_fails",
    "recovered",
    "late_violations",
    "sites_recovered",
    "revalidated",
    "pending",
    "partial_updates",
    "blocked_updates",
)
# Latency rows pin hedged batched reads: hedging must engage (and win)
# only on the armed slow-tail config, bill exactly one extra trip per
# issued hedge (issued == won + wasted), and flatten the tail — the
# hedged p99 may never exceed the unhedged p99 of the same skew.
TOPOLOGY_LATENCY_METRICS = (
    "p50_us",
    "p99_us",
    "remote_trips",
    "hedges_issued",
    "hedges_won",
    "hedges_wasted",
)


def check_topology(path, doc, problems):
    sweeps = [p for p in doc.get("points", [])
              if isinstance(p, dict) and p.get("kind") == "sweep"
              and isinstance(p.get("name"), str)]
    names = {p["name"] for p in sweeps}
    for row in TOPOLOGY_ROWS:
        if row not in names:
            fail(path, f"topology: missing sweep row {row!r}", problems)
    for point in sweeps:
        metrics = point.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by check_point
        if point["name"].startswith("topology/batch/"):
            wanted = TOPOLOGY_BATCH_METRICS
        elif point["name"].startswith("topology/latency/"):
            wanted = TOPOLOGY_LATENCY_METRICS
        else:
            wanted = TOPOLOGY_OUTAGE_METRICS
        for key in wanted:
            if key not in metrics:
                fail(path,
                     f"topology: sweep {point['name']!r} missing "
                     f"metric {key!r}", problems)
        if point["name"].startswith("topology/latency/"):
            issued = metrics.get("hedges_issued")
            won = metrics.get("hedges_won")
            wasted = metrics.get("hedges_wasted")
            if all(isinstance(v, numbers.Real) and not isinstance(v, bool)
                   for v in (issued, won, wasted)):
                if issued != won + wasted:
                    fail(path,
                         f"topology: sweep {point['name']!r} hedge "
                         f"accounting does not balance (issued {issued} != "
                         f"won {won} + wasted {wasted})", problems)
                if not point["name"].endswith("/skew/hedged") and issued != 0:
                    fail(path,
                         f"topology: sweep {point['name']!r} issued "
                         f"{issued} hedges with hedging off", problems)
        if point["name"].startswith("topology/outage/"):
            pending = metrics.get("pending")
            if isinstance(pending, numbers.Real) and pending != 0:
                fail(path,
                     f"topology: sweep {point['name']!r} left {pending} "
                     f"deferred checks pending after recovery", problems)
            sites = metrics.get("sites")
            recovered = metrics.get("sites_recovered")
            if (isinstance(sites, numbers.Real)
                    and isinstance(recovered, numbers.Real)
                    and sites > 1 and recovered == 0):
                fail(path,
                     f"topology: sweep {point['name']!r} observed no site "
                     f"recoveries in a multi-site outage run", problems)
    by_name = {p["name"]: p.get("metrics") for p in sweeps
               if isinstance(p.get("metrics"), dict)}
    hedged = by_name.get("topology/latency/s4/skew/hedged")
    unhedged = by_name.get("topology/latency/s4/skew/unhedged")
    if hedged and unhedged:
        issued = hedged.get("hedges_issued")
        won = hedged.get("hedges_won")
        if isinstance(issued, numbers.Real) and issued <= 0:
            fail(path,
                 "topology: hedged slow-tail row issued no hedges "
                 "(hedging never engaged)", problems)
        if isinstance(won, numbers.Real) and won <= 0:
            fail(path,
                 "topology: hedged slow-tail row won no hedges "
                 "(backup trips never beat the slow primary)", problems)
        p99_h = hedged.get("p99_us")
        p99_u = unhedged.get("p99_us")
        if (isinstance(p99_h, numbers.Real)
                and isinstance(p99_u, numbers.Real) and p99_h > p99_u):
            fail(path,
                 f"topology: hedged p99 ({p99_h}us) exceeds unhedged p99 "
                 f"({p99_u}us) on the slow-tail config", problems)


# The plan_cache sweep is the acceptance evidence of the compiled-plan
# cache: the recheck rows must show the cached re-check episodes beating
# the cold-compile path (both within the warm run and against the
# cache-off run), and the locality rows must carry hit/compile counts so
# a cache that silently stops serving hits fails CI.
PLAN_CACHE_LOCALITIES = ("f0.00", "f0.50", "f0.90", "f1.00")
PLAN_CACHE_RECHECK_METRICS = (
    "constraints",
    "episodes",
    "ns_per_update_off",
    "ns_per_update_on",
    "run_speedup",
    "ns_first_episode_on",
    "ns_recheck_episode_on",
    "episode_speedup",
    "plan_hits",
    "plan_compiles",
)
PLAN_CACHE_LOCALITY_METRICS = (
    "locality",
    "constraints",
    "updates",
    "ns_per_update_off",
    "ns_per_update_on",
    "plan_hits",
    "plan_compiles",
    "hit_rate",
)


def check_plan_cache(path, doc, problems):
    sweeps = [p for p in doc.get("points", [])
              if isinstance(p, dict) and p.get("kind") == "sweep"
              and isinstance(p.get("name"), str)]
    recheck = [p for p in sweeps if p["name"].startswith("recheck/")]
    if not recheck:
        fail(path, "plan_cache: no recheck sweep rows", problems)
    for locality in PLAN_CACHE_LOCALITIES:
        if not any(f"/{locality}/" in p["name"] for p in sweeps):
            fail(path, f"plan_cache: no locality sweep row for {locality}",
                 problems)
    for point in sweeps:
        metrics = point.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by check_point
        wanted = (PLAN_CACHE_RECHECK_METRICS
                  if point["name"].startswith("recheck/")
                  else PLAN_CACHE_LOCALITY_METRICS)
        for key in wanted:
            if key not in metrics:
                fail(path,
                     f"plan_cache: sweep {point['name']!r} missing "
                     f"metric {key!r}", problems)
        if not point["name"].startswith("recheck/"):
            continue
        hits = metrics.get("plan_hits")
        if isinstance(hits, numbers.Real) and hits <= 0:
            fail(path,
                 f"plan_cache: sweep {point['name']!r} served no cache "
                 f"hits", problems)
        run_speedup = metrics.get("run_speedup")
        if isinstance(run_speedup, numbers.Real) and run_speedup <= 1.0:
            fail(path,
                 f"plan_cache: sweep {point['name']!r} cached run did not "
                 f"beat the cache-off run (speedup {run_speedup})", problems)
        episode_speedup = metrics.get("episode_speedup")
        if isinstance(episode_speedup, numbers.Real) and episode_speedup < 5.0:
            fail(path,
                 f"plan_cache: sweep {point['name']!r} cached re-check "
                 f"episodes are less than 5x faster than the compile "
                 f"episode (got {episode_speedup})", problems)


# The episode_pipeline sweep is the acceptance evidence of the pipelined
# episode scheduler: low-conflict re-check rows must show the pipeline
# beating depth 1 (at least break-even at depth 2, at least 2x from depth
# 4 up), and every row's pipeline accounting must balance — an admitted
# episode either committed from speculation or was retried (conflict
# re-run or serial-fallback admission).
EPISODE_PIPELINE_ROWS = tuple(
    f"pipeline/{regime}/t{threads}/d{depth}"
    for regime in ("low", "high")
    for threads in (4, 8)
    for depth in (1, 2, 4, 8))
EPISODE_PIPELINE_METRICS = (
    "depth",
    "threads",
    "high_conflict",
    "episodes",
    "trip_latency_us",
    "ns_total",
    "episodes_per_sec",
    "speedup_vs_depth1",
    "admitted",
    "committed",
    "conflicts",
    "retried_commits",
)


def check_episode_pipeline(path, doc, problems):
    sweeps = [p for p in doc.get("points", [])
              if isinstance(p, dict) and p.get("kind") == "sweep"
              and isinstance(p.get("name"), str)]
    names = {p["name"] for p in sweeps}
    for row in EPISODE_PIPELINE_ROWS:
        if row not in names:
            fail(path, f"episode_pipeline: missing sweep row {row!r}",
                 problems)
    for point in sweeps:
        metrics = point.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by check_point
        for key in EPISODE_PIPELINE_METRICS:
            if key not in metrics:
                fail(path,
                     f"episode_pipeline: sweep {point['name']!r} missing "
                     f"metric {key!r}", problems)
        admitted = metrics.get("admitted")
        committed = metrics.get("committed")
        retried = metrics.get("retried_commits")
        if all(isinstance(v, numbers.Real) and not isinstance(v, bool)
               for v in (admitted, committed, retried)):
            if admitted != committed + retried:
                fail(path,
                     f"episode_pipeline: sweep {point['name']!r} accounting "
                     f"does not balance (admitted {admitted} != committed "
                     f"{committed} + retried {retried})", problems)
        depth = metrics.get("depth")
        high = metrics.get("high_conflict")
        speedup = metrics.get("speedup_vs_depth1")
        if not all(isinstance(v, numbers.Real) and not isinstance(v, bool)
                   for v in (depth, high, speedup)):
            continue
        if high != 0 or depth <= 1:
            continue
        floor = 2.0 if depth >= 4 else 1.0
        if speedup < floor:
            fail(path,
                 f"episode_pipeline: sweep {point['name']!r} low-conflict "
                 f"speedup_vs_depth1 is {speedup}, want >= {floor}", problems)


# The ra_kernels sweep is the acceptance evidence of the columnar read
# path: every kernel row must exist with its row-vs-columnar timing pair,
# the micro-kernels must beat the row oracle by a clear margin (the floor
# is deliberately below the ~10x seen on release builds, to absorb CI
# noise and quick-mode shrinkage), and the end-to-end evaluator rows must
# at least break even — the segment may never make evaluation slower.
RA_KERNELS_KERNEL_ROWS = (
    "kernel_scan_eq_dict",
    "kernel_scan_cmp_int",
    "kernel_scan_cmp_dict",
    "kernel_join_build_probe",
)
RA_KERNELS_EVAL_ROWS = (
    "eval_select",
    "eval_equi_join",
)
# The int-keyed join still pays a hash lookup per probe row (the win is the
# cheaper hash/compare, not a different asymptotic), so it gets the
# break-even floor rather than the kernel floor.
RA_KERNELS_AUX_ROWS = (
    "kernel_join_int_key",
)
RA_KERNELS_METRICS = (
    "rows",
    "row_ns",
    "columnar_ns",
    "speedup_vs_row",
    "checksum",
)
RA_KERNELS_KERNEL_FLOOR = 3.0
RA_KERNELS_EVAL_FLOOR = 0.9


def check_ra_kernels(path, doc, problems):
    sweeps = [p for p in doc.get("points", [])
              if isinstance(p, dict) and p.get("kind") == "sweep"
              and isinstance(p.get("name"), str)]
    names = {p["name"] for p in sweeps}
    for row in (RA_KERNELS_KERNEL_ROWS + RA_KERNELS_EVAL_ROWS
                + RA_KERNELS_AUX_ROWS):
        if row not in names:
            fail(path, f"ra_kernels: missing sweep row {row!r}", problems)
    for point in sweeps:
        metrics = point.get("metrics")
        if not isinstance(metrics, dict):
            continue  # already reported by check_point
        for key in RA_KERNELS_METRICS:
            if key not in metrics:
                fail(path,
                     f"ra_kernels: sweep {point['name']!r} missing "
                     f"metric {key!r}", problems)
        speedup = metrics.get("speedup_vs_row")
        if not isinstance(speedup, numbers.Real) or isinstance(speedup, bool):
            continue
        if point["name"] in RA_KERNELS_KERNEL_ROWS \
                and speedup < RA_KERNELS_KERNEL_FLOOR:
            fail(path,
                 f"ra_kernels: sweep {point['name']!r} speedup_vs_row is "
                 f"{speedup}, want >= {RA_KERNELS_KERNEL_FLOOR}", problems)
        if point["name"] in RA_KERNELS_EVAL_ROWS + RA_KERNELS_AUX_ROWS \
                and speedup < RA_KERNELS_EVAL_FLOOR:
            fail(path,
                 f"ra_kernels: sweep {point['name']!r} speedup_vs_row is "
                 f"{speedup}, want >= {RA_KERNELS_EVAL_FLOOR} (the columnar "
                 f"path regressed end-to-end evaluation)", problems)


def check_file(path, problems):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}", problems)
        return
    if not isinstance(doc, dict):
        fail(path, "top level is not an object", problems)
        return
    if doc.get("schema_version") != 1:
        fail(path, f"schema_version is {doc.get('schema_version')!r}, want 1",
             problems)
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        fail(path, "name missing or empty", problems)
    env = doc.get("env")
    if not isinstance(env, dict):
        fail(path, "env missing or not an object", problems)
    elif not isinstance(env.get("quick"), bool):
        fail(path, "env.quick missing or not a bool", problems)
    points = doc.get("points")
    if not isinstance(points, list):
        fail(path, "points missing or not an array", problems)
        return
    if not points:
        fail(path, "points is empty (no benchmark or sweep output captured)",
             problems)
    for i, point in enumerate(points):
        check_point(path, i, point, problems)
    if doc.get("name") == "remote_cache":
        check_remote_cache(path, doc, problems)
    if doc.get("name") == "overload":
        check_overload(path, doc, problems)
    if doc.get("name") == "topology":
        check_topology(path, doc, problems)
    if doc.get("name") == "plan_cache":
        check_plan_cache(path, doc, problems)
    if doc.get("name") == "episode_pipeline":
        check_episode_pipeline(path, doc, problems)
    if doc.get("name") == "ra_kernels":
        check_ra_kernels(path, doc, problems)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    problems = []
    for path in argv[1:]:
        before = len(problems)
        check_file(path, problems)
        if len(problems) == before:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["points"])
            print(f"{path}: OK ({n} points)")
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
